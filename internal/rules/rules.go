// Package rules implements the static checkers behind the paper's
// compliance findings: MISRA-inspired language-subset rules, strong-typing
// and conversion checks, dynamic-memory and pointer restrictions,
// structural rules (single exit, no goto, no recursion), defensive
// programming detection, and naming/style conformance. Every finding is
// tagged with the ISO 26262-6 table row it evidences.
package rules

import (
	"fmt"
	"sort"

	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/iso26262"
	"repro/internal/srcfile"
)

// Severity grades findings.
type Severity int

// Severity levels.
const (
	// Info findings are observations, not violations.
	Info Severity = iota
	// Warning findings are violations that may be justified.
	Warning
	// Violation findings contradict a highly recommended practice.
	Violation
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	default:
		return "violation"
	}
}

// Finding is one diagnostic.
type Finding struct {
	RuleID   string
	Severity Severity
	File     string
	Module   string
	Line     int
	Msg      string
	// Refs are the ISO 26262-6 table rows this finding evidences.
	Refs []iso26262.Ref
	// Function is the enclosing function name, when applicable.
	Function string
}

// String renders the finding as path:line: [rule] message.
func (f *Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.RuleID, f.Msg)
}

// FuncInfo is the per-function context shared by rules. It IS the
// artifact cache's record (a type alias): the fields rules read — Decl,
// File, Module, Callees (unqualified), CCN, Returns — are computed once
// in the artifact analysis walk, so building a rules context performs no
// per-function work at all. Earlier revisions copied every record into a
// rules-local mirror struct on every context build, which made warm
// re-assessment O(corpus); the alias removes that layer entirely.
type FuncInfo = artifact.Func

// Context carries the parsed corpus plus cross-file indexes that
// corpus-level rules (recursion, return-value checking) need.
type Context struct {
	Units map[string]*ccast.TranslationUnit
	// Funcs lists every function definition in path order.
	Funcs []*FuncInfo
	// ByName indexes function definitions by unqualified name. Multiple
	// definitions with the same name keep the first.
	ByName map[string]*FuncInfo
	// GlobalNames maps file-scope variable names to their module.
	GlobalNames map[string]string
	// Index is the shared artifact cache the context was built from.
	Index *artifact.Index
	// unitFuncs maps each unit path to its FuncInfos in source order.
	unitFuncs map[string][]*FuncInfo
}

// NewContext builds the shared indexes over parsed units.
func NewContext(units map[string]*ccast.TranslationUnit) *Context {
	return NewContextFromIndex(artifact.Build(units))
}

// NewContextFromIndex adapts a prebuilt artifact index into the rules
// context. Because FuncInfo aliases the artifact record, this is a thin
// view: the function list, name index, global-name map, and per-unit
// lists are shared with the index (O(1), no copying). After an
// Index.Apply, build a fresh context — it is free — rather than reusing
// an old one (Apply replaces the slices it rebuilds), and never read a
// context concurrently with Apply.
func NewContextFromIndex(ix *artifact.Index) *Context {
	return &Context{
		Units:       ix.Units,
		Funcs:       ix.Funcs,
		ByName:      ix.ByName,
		GlobalNames: ix.GlobalNames,
		Index:       ix,
		unitFuncs:   ix.UnitFuncsMap(),
	}
}

// sortedUnits returns the corpus translation units in path order.
// Rule traversals that emit findings must iterate units through this
// (not by ranging ctx.Units directly) so each rule's emission order is
// deterministic on its own, independent of the caller's final sort.
func (ctx *Context) sortedUnits() []*ccast.TranslationUnit {
	paths := make([]string, 0, len(ctx.Units))
	for p := range ctx.Units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	units := make([]*ccast.TranslationUnit, 0, len(paths))
	for _, p := range paths {
		units = append(units, ctx.Units[p])
	}
	return units
}

// Rule is one checker.
type Rule interface {
	// ID is a short stable identifier, e.g. "cast".
	ID() string
	// Describe is a one-line human description.
	Describe() string
	// Check runs the rule over the whole context.
	Check(ctx *Context) []Finding
}

// DefaultRules returns the full checker set in a stable order.
func DefaultRules() []Rule {
	return []Rule{
		&ComplexityRule{Threshold: 10},
		&LanguageSubsetRule{},
		&MISRAExtraRule{},
		&CastRule{},
		&ImplicitConversionRule{},
		&DefensiveRule{},
		&GlobalVarRule{},
		&StyleRule{},
		&NamingRule{},
		&MultiExitRule{},
		&DynamicMemoryRule{},
		&UninitializedRule{},
		&ShadowRule{},
		&PointerRule{},
		&GotoRule{},
		&RecursionRule{},
	}
}

// Run executes rules over the context, returning all findings sorted by
// file then line then rule. Rules implementing FusedRule execute on the
// fused single-pass engine with files processed in parallel; any other
// rule set falls back to the sequential per-rule passes. Both paths
// produce byte-identical output (see sortFindings).
func Run(ctx *Context, rs []Rule) []Finding {
	fused := make([]FusedRule, 0, len(rs))
	for _, r := range rs {
		fr, ok := r.(FusedRule)
		if !ok {
			return RunSequential(ctx, rs)
		}
		fused = append(fused, fr)
	}
	return runFused(ctx, fused)
}

// RunSequential is the seed engine: every rule performs its own pass over
// the whole corpus. Kept as the reference implementation the fused engine
// is equivalence-tested against, and for rules that do not implement
// FusedRule.
func RunSequential(ctx *Context, rs []Rule) []Finding {
	// Pre-size for the finding density observed on AD-scale corpora
	// (roughly one finding per three corpus functions per rule).
	out := make([]Finding, 0, 16+len(rs)*len(ctx.Funcs)/3)
	for _, r := range rs {
		out = append(out, r.Check(ctx)...)
	}
	sortFindings(out)
	return out
}

// findingLess is the total order over findings: file, line, rule, then
// the remaining fields, so equal-key findings from different passes land
// identically however the engine scheduled them.
func findingLess(a, b *Finding) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.RuleID != b.RuleID {
		return a.RuleID < b.RuleID
	}
	if a.Msg != b.Msg {
		return a.Msg < b.Msg
	}
	if a.Function != b.Function {
		return a.Function < b.Function
	}
	return a.Severity < b.Severity
}

// sortFindings sorts findings under the findingLess total order.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool { return findingLess(&out[i], &out[j]) })
}

// UnqualifiedName strips namespace/class qualifiers.
func UnqualifiedName(name string) string { return artifact.Unqualified(name) }

// CalleeName extracts the called name from a call expression, stripping
// qualifiers (the artifact cache keeps the raw spelling; rules match on
// unqualified names).
func CalleeName(c *ccast.Call) string {
	return UnqualifiedName(artifact.CalleeName(c))
}

// finding is a small constructor helper for rules.
func finding(rule string, sev Severity, fi *FuncInfo, line int, msg string, refs ...iso26262.Ref) Finding {
	f := Finding{RuleID: rule, Severity: sev, Line: line, Msg: msg, Refs: refs}
	if fi != nil {
		f.File = fi.File.Path
		f.Module = fi.Module
		f.Function = fi.Decl.Name
	}
	return f
}

// fileFinding constructs a finding not tied to a function.
func fileFinding(rule string, sev Severity, file *srcfile.File, line int, msg string, refs ...iso26262.Ref) Finding {
	return Finding{
		RuleID: rule, Severity: sev, File: file.Path,
		Module: file.ModuleName(), Line: line, Msg: msg, Refs: refs,
	}
}
