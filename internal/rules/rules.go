// Package rules implements the static checkers behind the paper's
// compliance findings: MISRA-inspired language-subset rules, strong-typing
// and conversion checks, dynamic-memory and pointer restrictions,
// structural rules (single exit, no goto, no recursion), defensive
// programming detection, and naming/style conformance. Every finding is
// tagged with the ISO 26262-6 table row it evidences.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ccast"
	"repro/internal/iso26262"
	"repro/internal/srcfile"
)

// Severity grades findings.
type Severity int

// Severity levels.
const (
	// Info findings are observations, not violations.
	Info Severity = iota
	// Warning findings are violations that may be justified.
	Warning
	// Violation findings contradict a highly recommended practice.
	Violation
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	default:
		return "violation"
	}
}

// Finding is one diagnostic.
type Finding struct {
	RuleID   string
	Severity Severity
	File     string
	Module   string
	Line     int
	Msg      string
	// Refs are the ISO 26262-6 table rows this finding evidences.
	Refs []iso26262.Ref
	// Function is the enclosing function name, when applicable.
	Function string
}

// String renders the finding as path:line: [rule] message.
func (f *Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.RuleID, f.Msg)
}

// FuncInfo is the per-function context shared by rules.
type FuncInfo struct {
	Decl   *ccast.FuncDecl
	File   *srcfile.File
	Module string
	// Callees are unqualified names of functions this one calls.
	Callees []string
}

// Context carries the parsed corpus plus cross-file indexes that
// corpus-level rules (recursion, return-value checking) need.
type Context struct {
	Units map[string]*ccast.TranslationUnit
	// Funcs lists every function definition in path order.
	Funcs []*FuncInfo
	// ByName indexes function definitions by unqualified name. Multiple
	// definitions with the same name keep the first.
	ByName map[string]*FuncInfo
	// GlobalNames maps file-scope variable names to their module.
	GlobalNames map[string]string
}

// NewContext builds the shared indexes over parsed units.
func NewContext(units map[string]*ccast.TranslationUnit) *Context {
	ctx := &Context{
		Units:       units,
		ByName:      make(map[string]*FuncInfo),
		GlobalNames: make(map[string]string),
	}
	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		tu := units[p]
		mod := tu.File.ModuleName()
		for _, fn := range tu.Funcs() {
			fi := &FuncInfo{Decl: fn, File: tu.File, Module: mod}
			ccast.WalkExprs(fn.Body, func(e ccast.Expr) bool {
				if c, ok := e.(*ccast.Call); ok {
					if n := CalleeName(c); n != "" {
						fi.Callees = append(fi.Callees, n)
					}
				}
				return true
			})
			ctx.Funcs = append(ctx.Funcs, fi)
			key := UnqualifiedName(fn.Name)
			if _, dup := ctx.ByName[key]; !dup {
				ctx.ByName[key] = fi
			}
		}
		for _, vd := range tu.GlobalVars() {
			for _, d := range vd.Names {
				ctx.GlobalNames[d.Name] = mod
			}
		}
	}
	return ctx
}

// Rule is one checker.
type Rule interface {
	// ID is a short stable identifier, e.g. "cast".
	ID() string
	// Describe is a one-line human description.
	Describe() string
	// Check runs the rule over the whole context.
	Check(ctx *Context) []Finding
}

// DefaultRules returns the full checker set in a stable order.
func DefaultRules() []Rule {
	return []Rule{
		&ComplexityRule{Threshold: 10},
		&LanguageSubsetRule{},
		&MISRAExtraRule{},
		&CastRule{},
		&ImplicitConversionRule{},
		&DefensiveRule{},
		&GlobalVarRule{},
		&StyleRule{},
		&NamingRule{},
		&MultiExitRule{},
		&DynamicMemoryRule{},
		&UninitializedRule{},
		&ShadowRule{},
		&PointerRule{},
		&GotoRule{},
		&RecursionRule{},
	}
}

// Run executes rules over the context, returning all findings sorted by
// file then line then rule.
func Run(ctx *Context, rs []Rule) []Finding {
	var out []Finding
	for _, r := range rs {
		out = append(out, r.Check(ctx)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].RuleID < out[j].RuleID
	})
	return out
}

// UnqualifiedName strips namespace/class qualifiers.
func UnqualifiedName(name string) string {
	if i := strings.LastIndex(name, "::"); i >= 0 {
		return name[i+2:]
	}
	return name
}

// CalleeName extracts the called name from a call expression.
func CalleeName(c *ccast.Call) string {
	switch f := c.Fun.(type) {
	case *ccast.Ident:
		return UnqualifiedName(f.Name)
	case *ccast.Member:
		return f.Name
	default:
		return ""
	}
}

// finding is a small constructor helper for rules.
func finding(rule string, sev Severity, fi *FuncInfo, line int, msg string, refs ...iso26262.Ref) Finding {
	f := Finding{RuleID: rule, Severity: sev, Line: line, Msg: msg, Refs: refs}
	if fi != nil {
		f.File = fi.File.Path
		f.Module = fi.Module
		f.Function = fi.Decl.Name
	}
	return f
}

// fileFinding constructs a finding not tied to a function.
func fileFinding(rule string, sev Severity, file *srcfile.File, line int, msg string, refs ...iso26262.Ref) Finding {
	return Finding{
		RuleID: rule, Severity: sev, File: file.Path,
		Module: file.ModuleName(), Line: line, Msg: msg, Refs: refs,
	}
}
