package rules

import (
	"strings"
	"testing"

	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/iso26262"
	"repro/internal/srcfile"
)

func makeCtx(t *testing.T, files map[string]string) *Context {
	t.Helper()
	fs := srcfile.NewFileSet()
	for p, src := range files {
		fs.AddSource(p, src)
	}
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	for _, e := range errs {
		t.Fatalf("parse error: %v", e)
	}
	return NewContext(units)
}

func countRule(fs []Finding, rule string) int {
	n := 0
	for _, f := range fs {
		if f.RuleID == rule {
			n++
		}
	}
	return n
}

func TestCastRuleCounts(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.cc": `
void f() {
    int x = (int)3.5;
    float y = static_cast<float>(x);
    long z = (long)y;
}`})
	fs := (&CastRule{}).Check(ctx)
	if len(fs) != 3 {
		t.Fatalf("casts = %d, want 3: %v", len(fs), fs)
	}
	for _, f := range fs {
		if f.Refs[0] != (iso26262.Ref{Table: iso26262.TableCoding, Item: 3}) {
			t.Errorf("wrong ref: %v", f.Refs)
		}
	}
}

func TestImplicitConversionRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
void f(float threshold) {
    int count = 3.5;
    float ratio = 2;
    int ok = (int)threshold;
    count = threshold;
}`})
	fs := (&ImplicitConversionRule{}).Check(ctx)
	// int <- 3.5, float <- 2, count = threshold; explicit cast is exempt.
	if len(fs) != 3 {
		t.Fatalf("implicit conversions = %d, want 3: %v", len(fs), fs)
	}
}

func TestDynamicMemoryRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"perception/a.cu": `
void alloc_buffers(int n) {
    float* h = (float*)malloc(n * sizeof(float));
    float* d;
    cudaMalloc(&d, n * sizeof(float));
    float* v = new float[n];
    delete[] v;
    free(h);
    cudaFree(d);
}`})
	fs := (&DynamicMemoryRule{}).Check(ctx)
	if len(fs) != 6 {
		t.Fatalf("dynamic memory findings = %d, want 6: %v", len(fs), fs)
	}
}

func TestMultiExitRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int single(int a) { a++; return a; }
int multi(int a) {
    if (a < 0) return -1;
    if (a == 0) return 0;
    return 1;
}
void none(int a) { a++; }
`})
	fs := (&MultiExitRule{}).Check(ctx)
	if len(fs) != 1 {
		t.Fatalf("multi-exit = %d, want 1: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "3 exit points") {
		t.Errorf("msg = %q", fs[0].Msg)
	}
}

func TestGlobalVarRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"perception/a.cc": `
int g_frame_count = 0;
static float g_scale;
const int kMaxObjects = 128;
void f() {}
`})
	fs := (&GlobalVarRule{}).Check(ctx)
	if len(fs) != 2 {
		t.Fatalf("globals = %d, want 2 (const exempt): %v", len(fs), fs)
	}
}

func TestGotoRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int f(int a) {
    if (a < 0) goto fail;
    return a;
fail:
    return -1;
}`})
	fs := (&GotoRule{}).Check(ctx)
	if len(fs) != 1 {
		t.Fatalf("gotos = %d, want 1", len(fs))
	}
}

func TestRecursionRuleDirect(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
int iterative(int n) { return n; }
`})
	fs := (&RecursionRule{}).Check(ctx)
	if len(fs) != 1 {
		t.Fatalf("recursion = %d, want 1: %v", len(fs), fs)
	}
	if fs[0].Function != "fact" {
		t.Errorf("function = %q", fs[0].Function)
	}
}

func TestRecursionRuleMutual(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int is_even(int n);
int is_odd(int n) {
    if (n == 0) return 0;
    return is_even(n - 1);
}
int is_even(int n) {
    if (n == 0) return 1;
    return is_odd(n - 1);
}
`})
	fs := (&RecursionRule{}).Check(ctx)
	if len(fs) != 2 {
		t.Fatalf("mutual recursion = %d, want 2: %v", len(fs), fs)
	}
}

func TestUninitializedRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int f() {
    int x;
    int y = 0;
    y = x + 1;
    int z;
    z = 5;
    return z + y;
}`})
	fs := (&UninitializedRule{}).Check(ctx)
	if len(fs) != 1 {
		t.Fatalf("uninit = %d, want 1 (x only): %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, `"x"`) {
		t.Errorf("msg = %q", fs[0].Msg)
	}
}

func TestUninitializedRuleAddressOfEscape(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int f() {
    int x;
    init_value(&x);
    return x;
}`})
	fs := (&UninitializedRule{}).Check(ctx)
	if len(fs) != 0 {
		t.Fatalf("address-taken var flagged: %v", fs)
	}
}

func TestShadowRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int count = 0;
void f() {
    int count = 1;
    if (count > 0) {
        int inner = 2;
        int count = inner;
        count++;
    }
}`})
	fs := (&ShadowRule{}).Check(ctx)
	// local count shadows global; inner count shadows outer local.
	if len(fs) != 2 {
		t.Fatalf("shadows = %d, want 2: %v", len(fs), fs)
	}
}

func TestDefensiveRuleUncheckedPointer(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int checked(float* p) {
    if (p == 0) return -1;
    return (int)p[0];
}
int unchecked(float* p) {
    return (int)p[0];
}
int untouched(float* p) {
    return 7;
}`})
	fs := (&DefensiveRule{}).Check(ctx)
	unchecked := Filter(fs, func(f *Finding) bool {
		return strings.Contains(f.Msg, "without null check")
	})
	if len(unchecked) != 1 {
		t.Fatalf("unchecked pointer findings = %d, want 1: %v", len(unchecked), fs)
	}
	if unchecked[0].Function != "unchecked" {
		t.Errorf("function = %q", unchecked[0].Function)
	}
}

func TestDefensiveRuleIgnoredReturn(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int compute(int a) { return a * 2; }
void log_msg(int a) { }
void caller() {
    compute(3);
    log_msg(4);
    int v = compute(5);
    v++;
}`})
	fs := (&DefensiveRule{}).Check(ctx)
	ignored := Filter(fs, func(f *Finding) bool {
		return strings.Contains(f.Msg, "ignored")
	})
	if len(ignored) != 1 {
		t.Fatalf("ignored returns = %d, want 1: %v", len(ignored), fs)
	}
}

func TestComplexityRule(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int complex_fn(int a) {\n")
	for i := 0; i < 15; i++ {
		sb.WriteString("if (a > 0) { a++; }\n")
	}
	sb.WriteString("return a;\n}\nint simple_fn(int a) { return a; }\n")
	ctx := makeCtx(t, map[string]string{"m/a.c": sb.String()})
	fs := (&ComplexityRule{Threshold: 10}).Check(ctx)
	if len(fs) != 1 {
		t.Fatalf("complexity findings = %d, want 1: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "complexity 16") {
		t.Errorf("msg = %q", fs[0].Msg)
	}
}

func TestLanguageSubsetRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"perception/k.cu": `
union Overlay { int i; float f; };
__global__ void kern(float* x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) x[i] = 0;
}
void launch(float* x, int n) {
    kern<<<1, 256>>>(x, n);
    atoi("42");
}`})
	fs := (&LanguageSubsetRule{}).Check(ctx)
	if countRule(fs, "lang-subset") < 4 {
		t.Fatalf("subset findings = %d, want >= 4 (union, kernel launch, atoi, kernel info): %v", len(fs), fs)
	}
	var launchFound bool
	for _, f := range fs {
		if strings.Contains(f.Msg, "kernel launch") {
			launchFound = true
		}
	}
	if !launchFound {
		t.Error("kernel launch finding missing")
	}
}

func TestPointerRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
float* g_buf;
void f(float* in, int n) {
    float* local = in;
    int x = n;
    x++;
    local++;
}`})
	fs := (&PointerRule{}).Check(ctx)
	if len(fs) != 3 {
		t.Fatalf("pointer findings = %d, want 3 (param, local, global): %v", len(fs), fs)
	}
}

func TestNamingRule(t *testing.T) {
	ctx := makeCtx(t, map[string]string{
		"m/good.cc": `
class ObjectTracker { public: int Track() { return 0; } };
`,
		"m/bad.cc": `
class object_tracker { public: int do_track() { return 0; } };
`,
	})
	fs := (&NamingRule{}).Check(ctx)
	bad := Filter(fs, func(f *Finding) bool { return f.File == "m/bad.cc" })
	good := Filter(fs, func(f *Finding) bool { return f.File == "m/good.cc" })
	if len(good) != 0 {
		t.Errorf("good file flagged: %v", good)
	}
	if len(bad) != 1 {
		// class name violates CamelCase; method lower_snake is allowed in
		// the mixed convention.
		t.Errorf("bad file findings = %d, want 1: %v", len(bad), bad)
	}
}

func TestStyleRule(t *testing.T) {
	long := strings.Repeat("x", 100)
	ctx := makeCtx(t, map[string]string{"m/a.cc": "int a; // " + long + "\n\tint b;\n"})
	fs := (&StyleRule{}).Check(ctx)
	if countRule(fs, "style") != 2 {
		t.Fatalf("style findings = %d, want 2 (long line + tab): %v", len(fs), fs)
	}
}

func TestRunSortsAndAggregates(t *testing.T) {
	ctx := makeCtx(t, map[string]string{
		"perception/a.c": `
int g_count;
int f(int a) {
    if (a < 0) return -1;
    return a;
}`,
		"control/b.c": `
void g() { goto out; out: return; }`,
	})
	fs := Run(ctx, DefaultRules())
	if len(fs) == 0 {
		t.Fatal("no findings")
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].File < fs[i-1].File {
			t.Fatal("findings not sorted by file")
		}
	}
	st := Aggregate(fs)
	if st.Total != len(fs) {
		t.Errorf("total = %d, want %d", st.Total, len(fs))
	}
	if st.Count("goto", "control") != 1 {
		t.Errorf("goto in control = %d", st.Count("goto", "control"))
	}
	if st.Count("multi-exit", "perception") != 1 {
		t.Errorf("multi-exit in perception = %d", st.Count("multi-exit", "perception"))
	}
	ref := iso26262.Ref{Table: iso26262.TableUnit, Item: 9}
	if len(ForRef(fs, ref)) != 1 {
		t.Errorf("ForRef(T8.9) = %d", len(ForRef(fs, ref)))
	}
}

func TestContextIndexes(t *testing.T) {
	ctx := makeCtx(t, map[string]string{"m/a.c": `
int helper() { return 1; }
int caller() { return helper(); }
`})
	if len(ctx.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(ctx.Funcs))
	}
	fi := ctx.ByName["caller"]
	if fi == nil || len(fi.Callees) != 1 || fi.Callees[0] != "helper" {
		t.Errorf("caller info = %+v", fi)
	}
}

func TestNoFalseCastOnDeclInit(t *testing.T) {
	// A plain initialization must not be counted as a cast.
	ctx := makeCtx(t, map[string]string{"m/a.c": `
void f() {
    int x = 5;
    float y = 1.5f;
}`})
	fs := (&CastRule{}).Check(ctx)
	if len(fs) != 0 {
		t.Errorf("false casts: %v", fs)
	}
}

var _ = ccast.CountReturns // keep import if unused in some builds
