package rules

import (
	"sort"

	"repro/internal/artifact"
	"repro/internal/par"
)

// This file implements the sharded incremental rule engine — the warm
// path of core.Assessor. Where Incremental keys one flat per-file cache
// on a corpus-wide environment signature (recomputed in O(corpus) after
// every delta), Sharded rides the artifact index's module shards:
//
//   - dirty detection consults per-shard generations, so a warm run
//     inspects only the shards a delta touched;
//   - each shard keeps a presorted finding segment (its files' cached
//     findings concatenated in shard path order) plus a Stats partial,
//     rebuilt in O(shard) only when the shard is dirty;
//   - the cross-file environment signature is the index's ExportOverlay
//     — per-shard export signatures combined in O(#shards) — so an edit
//     that does not change exported facts costs nothing corpus-wide;
//   - corpus-level rule output (the recursion SCC) is cached under the
//     index's GraphOverlay and reused verbatim while the corpus
//     call-graph view is unchanged;
//   - the global finding stream is a k-way merge of the shard segments
//     (plus the corpus segment), byte-identical to a cold fused run
//     because every segment is sorted under the same findingLess total
//     order the cold engine sorts with.
//
// Output equivalence with rules.Run / RunSequential over the same
// context is pinned by TestShardedMatchesColdRun and exercised at scale
// by the differential harness (internal/difftest).
type Sharded struct {
	// Hydrate, when set, is called with the dirty paths of a warm run
	// before their (re-)walk. A snapshot-restored assessor installs it
	// to re-parse stub units on demand: restored units carry analysis
	// facts but no statement bodies, and the fused walk needs real
	// ASTs. The hook runs at a sequential point of Run (before any
	// worker starts), so it may replace index entries in place.
	Hydrate func(paths []string)

	rules []Rule
	fused []FusedRule // nil when any rule lacks a fused form

	ix      *artifact.Index
	export  uint64
	haveEnv bool

	shards map[string]*shardSeg

	corpusKey  [2]uint64
	haveCorpus bool
	corpusSeg  []Finding
	corpusStat *Stats

	stats     *Stats
	lastDirty int
}

// shardSeg is the engine's cached state for one module shard.
//
// A snapshot-restored segment starts *sealed*: valid at its shard's
// generation but holding neither the segment nor the per-file map —
// only the two loaders. The segment (and its stats partial)
// materializes at the first Run, because the global merge reads every
// segment; the per-file map and the content hashes inside it thaw only
// when a delta dirties the shard. perFile == nil is the sealed marker.
type shardSeg struct {
	gen     uint64 // artifact shard generation this segment matches
	valid   bool
	perFile map[string]incrEntry
	seg     []Finding
	stats   *Stats

	// load/thaw are the snapshot loaders of a sealed segment (nil on
	// segments that never went through a lazy restore). segReady records
	// that seg/stats were materialized from load; the loaders stay set
	// until thawEntries so a later dirtying can still build perFile.
	load     func() ([][]Finding, bool)
	thaw     func() ([]string, []uint64, bool)
	segReady bool
}

// materialize decodes a sealed segment's findings block and builds the
// merged segment plus its stats partial, leaving the per-file map (and
// its content hashes) deferred. Returns false when the block will not
// decode; the caller then recomputes the shard from scratch. Safe to
// run for distinct segments concurrently: loaders of distinct shards
// decode disjoint snapshot extents and every write is segment-local.
func (seg *shardSeg) materialize(sh *artifact.Shard) bool {
	fss, ok := seg.load()
	if !ok || len(fss) != sh.Len() {
		return false
	}
	total := 0
	for _, fs := range fss {
		total += len(fs)
	}
	seg.seg = make([]Finding, 0, total)
	for _, fs := range fss {
		seg.seg = append(seg.seg, fs...)
	}
	seg.stats = Aggregate(seg.seg)
	seg.segReady = true
	return true
}

// thawEntries materializes a sealed segment's per-file map from its
// loaders: the snapshot-time paths, the content hashes of the sources
// the findings came from, and the finding lists themselves. Returns
// false when the shard's block cannot be decoded — the caller then
// treats every file as dirty, which recomputes the shard instead of
// serving anything stale.
func (seg *shardSeg) thawEntries() bool {
	if seg.thaw == nil {
		return false
	}
	load, thaw := seg.load, seg.thaw
	seg.load, seg.thaw = nil, nil
	paths, hashes, ok := thaw()
	if !ok || len(paths) != len(hashes) {
		return false
	}
	fss, ok := load()
	if !ok || len(fss) != len(paths) {
		return false
	}
	seg.perFile = make(map[string]incrEntry, len(paths))
	for i, p := range paths {
		seg.perFile[p] = incrEntry{hash: hashes[i], findings: fss[i]}
	}
	return true
}

// NewSharded creates a sharded incremental engine over the given rule
// set. Rule sets containing non-fused rules still work but fall back to
// a full run every time (nothing is cached), as do contexts without a
// sharded index behind them.
func NewSharded(rs []Rule) *Sharded {
	s := &Sharded{rules: rs, shards: make(map[string]*shardSeg)}
	fused := make([]FusedRule, 0, len(rs))
	for _, r := range rs {
		fr, ok := r.(FusedRule)
		if !ok {
			fused = nil
			break
		}
		fused = append(fused, fr)
	}
	s.fused = fused
	return s
}

// LastDirty returns the number of files the previous Run re-checked
// (every file on a cold or invalidated run).
func (s *Sharded) LastDirty() int { return s.lastDirty }

// Stats returns the finding statistics of the previous Run, folded from
// the per-shard partials. Identical to Aggregate over the returned
// findings.
func (s *Sharded) Stats() *Stats { return s.stats }

// reset drops all engine state (new index ⇒ new corpus).
func (s *Sharded) reset(ix *artifact.Index) {
	s.ix = ix
	s.haveEnv = false
	s.haveCorpus = false
	s.shards = make(map[string]*shardSeg)
	s.corpusSeg, s.corpusStat = nil, nil
}

// Run executes the rules over the context. Output is byte-identical to
// rules.Run over the same context; a warm run after a delta re-checks
// only the dirty files and re-aggregates only the dirty shards.
func (s *Sharded) Run(ctx *Context) []Finding {
	if s.fused == nil || ctx.Index == nil || ctx.unitFuncs == nil {
		s.lastDirty = len(ctx.Units)
		out := Run(ctx, s.rules)
		s.stats = Aggregate(out)
		return out
	}
	ix := ctx.Index
	if ix != s.ix {
		s.reset(ix)
	}

	env := ix.ExportOverlay()
	invalidate := !s.haveEnv || env != s.export
	s.export, s.haveEnv = env, true

	names := ix.ShardNames()
	// Drop state for shards that no longer exist.
	if len(s.shards) > len(names) {
		live := make(map[string]bool, len(names))
		for _, m := range names {
			live[m] = true
		}
		for m := range s.shards {
			if !live[m] {
				delete(s.shards, m)
			}
		}
	}

	// Materialize sealed clean shards' segments on a worker pool before
	// the scan: the first warm run after a lazy restore decodes one
	// snapshot block per shard, and the blocks are independent. The scan
	// below sees segReady and skips them; a shard whose block failed to
	// decode falls through to the inline retry-then-recompute path.
	if !invalidate {
		var sealed []*shardSeg
		var sealedSh []*artifact.Shard
		for _, m := range names {
			sh := ix.Shard(m)
			seg := s.shards[m]
			if seg != nil && seg.valid && seg.gen == sh.Gen() && seg.load != nil && !seg.segReady {
				sealed = append(sealed, seg)
				sealedSh = append(sealedSh, sh)
			}
		}
		par.For(par.Workers(len(sealed)), len(sealed), func(k int) {
			sealed[k].materialize(sealedSh[k])
		})
	}

	// Collect dirty files across all dirty shards (hash-compared within
	// a shard only when the shard's generation moved or the environment
	// invalidated everything).
	var dirtyPaths []string
	var dirtyHash []uint64
	var rebuild []string // modules whose segments need rebuilding
	segOf := make(map[string]*shardSeg, len(names))
	for _, m := range names {
		sh := ix.Shard(m)
		seg := s.shards[m]
		if seg == nil {
			seg = &shardSeg{perFile: make(map[string]incrEntry)}
			s.shards[m] = seg
		}
		if invalidate {
			// Sealed or not, the cached findings are keyed on cross-file
			// facts that just changed: drop everything, including any
			// not-yet-decoded snapshot state.
			seg.load, seg.thaw, seg.segReady = nil, nil, false
			if seg.perFile == nil {
				seg.perFile = make(map[string]incrEntry)
			} else {
				clear(seg.perFile)
			}
			seg.valid = false
		} else if seg.valid && seg.gen == sh.Gen() {
			if seg.load == nil || seg.segReady {
				continue // clean shard: segment and stats reused as-is
			}
			// Sealed clean shard the parallel pre-pass could not
			// materialize (or that appeared since): one inline retry.
			if seg.materialize(sh) {
				continue
			}
			// The shard's snapshot block would not decode: forget it and
			// recompute the shard from scratch.
			seg.load, seg.thaw = nil, nil
			seg.perFile = make(map[string]incrEntry)
			seg.valid = false
		}
		if seg.perFile == nil && !seg.thawEntries() {
			seg.perFile = make(map[string]incrEntry)
		}
		paths := sh.Paths()
		for _, p := range paths {
			h := ctx.Units[p].File.Hash()
			if e, ok := seg.perFile[p]; !ok || e.hash != h {
				dirtyPaths = append(dirtyPaths, p)
				dirtyHash = append(dirtyHash, h)
				segOf[p] = seg
			}
		}
		if len(seg.perFile) > len(paths) {
			live := make(map[string]bool, len(paths))
			for _, p := range paths {
				live[p] = true
			}
			for p := range seg.perFile {
				if !live[p] {
					delete(seg.perFile, p)
				}
			}
		}
		rebuild = append(rebuild, m)
	}
	s.lastDirty = len(dirtyPaths)
	if s.Hydrate != nil && len(dirtyPaths) > 0 {
		s.Hydrate(dirtyPaths)
	}

	// Corpus-level hooks: reuse the cached segment while the corpus
	// call-graph view is unchanged, otherwise run them once. Corpus
	// handlers must be pure functions of the graph/export view (see
	// Registrar.OnCorpus); RecursionRule's SCC is.
	ckey := [2]uint64{ix.GraphOverlay(), env}
	var reuseProg *Registrar
	if !s.haveCorpus || ckey != s.corpusKey {
		em := &Emitter{}
		reuseProg = runCorpusHooks(ctx, s.fused, em)
		sortFindings(em.out)
		s.corpusSeg = em.out
		s.corpusStat = Aggregate(em.out)
		s.corpusKey, s.haveCorpus = ckey, true
	}

	// Re-check the dirty files (parallel across shards) and cache each
	// file's findings pre-sorted: within a file the findingLess order is
	// self-contained, so shard segments concatenate without re-sorting.
	for k, fs := range runUnits(ctx, s.fused, dirtyPaths, reuseProg) {
		sortFindings(fs)
		segOf[dirtyPaths[k]].perFile[dirtyPaths[k]] = incrEntry{hash: dirtyHash[k], findings: fs}
	}

	// Rebuild the dirty shards' segments and stats partials in parallel:
	// each rebuild reads only its own per-file cache (fully populated
	// above) and writes only its own segment, and the merge below walks
	// shards in sorted name order, so output is scheduling-independent.
	par.For(par.Workers(len(rebuild)), len(rebuild), func(k int) {
		m := rebuild[k]
		sh := ix.Shard(m)
		seg := s.shards[m]
		total := 0
		for _, p := range sh.Paths() {
			total += len(seg.perFile[p].findings)
		}
		seg.seg = make([]Finding, 0, total)
		for _, p := range sh.Paths() {
			seg.seg = append(seg.seg, seg.perFile[p].findings...)
		}
		seg.stats = Aggregate(seg.seg)
		seg.gen, seg.valid = sh.Gen(), true
	})

	// Merge the per-shard segments (and the corpus segment) under the
	// findingLess total order, and fold the stats partials.
	segs := make([][]Finding, 0, len(names)+1)
	parts := make([]*Stats, 0, len(names)+1)
	if len(s.corpusSeg) > 0 {
		segs = append(segs, s.corpusSeg)
	}
	parts = append(parts, s.corpusStat)
	for _, m := range names {
		seg := s.shards[m]
		if len(seg.seg) > 0 {
			segs = append(segs, seg.seg)
		}
		parts = append(parts, seg.stats)
	}
	s.stats = MergeStats(parts...)
	return mergeFindingSegments(segs)
}

// mergeFindingSegments merges sorted finding segments into one sorted
// stream. Shard path ranges are normally disjoint, so the merge
// degrades to bulk copies: at each round the segment with the smallest
// head is copied forward up to the smallest head among the other
// segments (found by binary search), giving O(total) copies plus
// O(#segments) comparisons per boundary crossing.
func mergeFindingSegments(segs [][]Finding) []Finding {
	total := 0
	for _, sg := range segs {
		total += len(sg)
	}
	out := make([]Finding, 0, total)
	switch len(segs) {
	case 0:
		return out
	case 1:
		return append(out, segs[0]...)
	}
	active := make([][]Finding, 0, len(segs))
	for _, sg := range segs {
		if len(sg) > 0 {
			active = append(active, sg)
		}
	}
	for len(active) > 1 {
		// Find the segment with the smallest head and the runner-up head.
		min := 0
		for i := 1; i < len(active); i++ {
			if findingLess(&active[i][0], &active[min][0]) {
				min = i
			}
		}
		next := -1
		for i := range active {
			if i == min {
				continue
			}
			if next < 0 || findingLess(&active[i][0], &active[next][0]) {
				next = i
			}
		}
		// Copy min's prefix of elements <= the runner-up head.
		cur := active[min]
		bound := &active[next][0]
		n := sort.Search(len(cur), func(i int) bool { return findingLess(bound, &cur[i]) })
		if n == 0 {
			n = 1 // heads compare equal: emit one and re-evaluate
		}
		out = append(out, cur[:n]...)
		if n == len(cur) {
			active = append(active[:min], active[min+1:]...)
		} else {
			active[min] = cur[n:]
		}
	}
	return append(out, active[0]...)
}
