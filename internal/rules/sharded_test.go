package rules_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/artifact"
	"repro/internal/ccparse"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// shardedCheck runs the sharded engine against a cold fused run over a
// fresh context and asserts byte-identical output, matching stats, and
// (when wantDirty >= 0) the expected number of re-checked files.
func shardedCheck(t *testing.T, stage string, eng *rules.Sharded, ix *artifact.Index, wantDirty int) {
	t.Helper()
	ctx := rules.NewContextFromIndex(ix)
	warm := eng.Run(ctx)
	cold := rules.Run(ctx, rules.DefaultRules())
	if got, want := renderFindings(warm), renderFindings(cold); !bytes.Equal(got, want) {
		t.Fatalf("%s: sharded output differs from cold run\n%s", stage, firstDiff(want, got))
	}
	if wantDirty >= 0 && eng.LastDirty() != wantDirty {
		t.Fatalf("%s: re-checked %d files, want %d", stage, eng.LastDirty(), wantDirty)
	}
	if !reflect.DeepEqual(eng.Stats(), rules.Aggregate(warm)) {
		t.Fatalf("%s: folded stats differ from flat Aggregate", stage)
	}
}

// TestShardedMatchesColdRun drives the sharded engine through deltas
// over the default corpus, asserting byte-identical output and exact
// dirty-file accounting at every step.
func TestShardedMatchesColdRun(t *testing.T) {
	forceParallel(t)
	fs := apollocorpus.GenerateDefault()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("corpus parse errors: %v", errs[0])
	}
	ix := artifact.Build(units)
	eng := rules.NewSharded(rules.DefaultRules())

	shardedCheck(t, "cold", eng, ix, len(ix.Paths))
	shardedCheck(t, "no-op rerun", eng, ix, 0)

	// Adding a function changes the dirty shard's export signature and
	// therefore the overlay: the whole cache invalidates, conservative
	// but correct.
	victim := ix.Paths[len(ix.Paths)/2]
	reparse(t, ix, victim, ix.Units[victim].File.Src+
		"\nint sharded_probe(int x) { if (x > 2) { return 1; } return 0; }\n")
	shardedCheck(t, "new-function edit", eng, ix, len(ix.Paths))

	ix.RemoveUnit(victim)
	shardedCheck(t, "removal", eng, ix, len(ix.Paths))
	shardedCheck(t, "post-removal rerun", eng, ix, 0)
}

// TestShardedBodyEditChecksOneFile pins the O(dirty shard) fast path: a
// body edit that keeps every exported fact intact re-checks exactly the
// dirty file, leaves the other shards' segments untouched, and still
// merges byte-identically.
func TestShardedBodyEditChecksOneFile(t *testing.T) {
	forceParallel(t)
	srcs := map[string]string{
		"m/a.c": "int ga;\nint fa(int x) { int y; return y + x; }\n",
		"m/b.c": "int fb(int x) { if (x > 0) { return 1; } return 0; }\n",
		"n/c.c": "void fc(void) { fb(3); }\n",
		"n/d.c": "int fd(int k) { int ga; return ga + k; }\n",
	}
	fs := srcfile.NewFileSet()
	for p, src := range srcs {
		fs.AddSource(p, src)
	}
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	ix := artifact.Build(units)
	eng := rules.NewSharded(rules.DefaultRules())

	shardedCheck(t, "cold", eng, ix, 4)
	shardedCheck(t, "no-op", eng, ix, 0)

	// Same signature (fb stays int(int)), same globals — new body with
	// different findings (a goto and a multi-exit structure).
	reparse(t, ix, "m/b.c",
		"int fb(int x) {\n  if (x > 1) { goto out; }\n  return 0;\nout:\n  return 1;\n}\n")
	shardedCheck(t, "body edit", eng, ix, 1)
	shardedCheck(t, "body edit no-op", eng, ix, 0)

	// A body edit introducing recursion changes the call-graph view:
	// the corpus segment must refresh even though exports are stable.
	reparse(t, ix, "n/c.c", "void fc(void) { fb(3); fc(); }\n")
	shardedCheck(t, "recursion edit", eng, ix, 1)
	found := false
	ctx := rules.NewContextFromIndex(ix)
	for _, f := range eng.Run(ctx) {
		if f.RuleID == "recursion" && f.Function == "fc" {
			found = true
		}
	}
	if !found {
		t.Fatal("recursion introduced by a body edit was not reported")
	}
}

// TestShardedCrossModuleEnv pins cross-shard environment invalidation:
// an edit in one module that changes a fact another module's cached
// findings depend on (callee voidness for the ignored-return check)
// must invalidate and re-report correctly.
func TestShardedCrossModuleEnv(t *testing.T) {
	srcs := map[string]string{
		"m/a.c": "int helper(int x) { return x + 1; }\n",
		"n/b.c": "void caller(void) { helper(4); }\n",
	}
	fs := srcfile.NewFileSet()
	for p, src := range srcs {
		fs.AddSource(p, src)
	}
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	ix := artifact.Build(units)
	eng := rules.NewSharded(rules.DefaultRules())
	shardedCheck(t, "cold", eng, ix, 2)

	hasIgnored := func() bool {
		for _, f := range eng.Run(rules.NewContextFromIndex(ix)) {
			if f.RuleID == "defensive" && f.File == "n/b.c" {
				return true
			}
		}
		return false
	}
	if !hasIgnored() {
		t.Fatal("ignored-return finding missing before the edit")
	}
	// helper becomes void: n/b.c's cached finding is stale and must go.
	reparse(t, ix, "m/a.c", "void helper(int x) { (void)x; }\n")
	shardedCheck(t, "voidness flip", eng, ix, 2)
	if hasIgnored() {
		t.Fatal("stale ignored-return finding survived a cross-module voidness flip")
	}
}

// TestShardedFallbacks pins the degraded paths: non-fused rule sets and
// hand-built contexts run the reference engine with full equivalence and
// still produce stats.
func TestShardedFallbacks(t *testing.T) {
	ctx := parseDefaultCorpus(t)

	bare := &rules.Context{Units: ctx.Units, Funcs: ctx.Funcs,
		ByName: ctx.ByName, GlobalNames: ctx.GlobalNames}
	eng := rules.NewSharded(rules.DefaultRules())
	warm := renderFindings(eng.Run(bare))
	cold := renderFindings(rules.RunSequential(bare, rules.DefaultRules()))
	if !bytes.Equal(warm, cold) {
		t.Errorf("bare-context sharded differs from sequential\n%s", firstDiff(cold, warm))
	}
	if eng.Stats() == nil || eng.Stats().Total == 0 {
		t.Error("fallback path left no stats")
	}

	rs := append(rules.DefaultRules(), unfusedRule{})
	eng = rules.NewSharded(rs)
	warm = renderFindings(eng.Run(ctx))
	cold = renderFindings(rules.Run(ctx, rs))
	if !bytes.Equal(warm, cold) {
		t.Errorf("non-fused sharded differs from Run\n%s", firstDiff(cold, warm))
	}
}
