package rules

import (
	"sort"
	"testing"

	"repro/internal/ccast"
	"repro/internal/srcfile"
)

// Rule Check traversals iterate units through sortedUnits so each
// rule's emission order is deterministic on its own (the adlint
// detrange invariant), rather than leaning on the caller's final sort.
func TestSortedUnitsPathOrder(t *testing.T) {
	unit := func(path string) *ccast.TranslationUnit {
		return &ccast.TranslationUnit{File: &srcfile.File{Path: path}}
	}
	ctx := &Context{Units: map[string]*ccast.TranslationUnit{
		"planning/z.cc":   unit("planning/z.cc"),
		"canbus/a.cc":     unit("canbus/a.cc"),
		"perception/m.cc": unit("perception/m.cc"),
	}}
	got := ctx.sortedUnits()
	if len(got) != len(ctx.Units) {
		t.Fatalf("sortedUnits returned %d units, want %d", len(got), len(ctx.Units))
	}
	paths := make([]string, 0, len(got))
	for _, tu := range got {
		paths = append(paths, tu.File.Path)
	}
	if !sort.StringsAreSorted(paths) {
		t.Fatalf("sortedUnits order %v is not path-sorted", paths)
	}
}
