package rules

import (
	"sort"

	"repro/internal/iso26262"
)

// Stats aggregates findings along the axes the assessment report needs.
type Stats struct {
	Total    int
	ByRule   map[string]int
	ByModule map[string]int
	ByRef    map[iso26262.Ref]int
	// ByRuleModule counts findings per (rule, module).
	ByRuleModule map[string]map[string]int
}

// Aggregate computes statistics over findings.
func Aggregate(fs []Finding) *Stats {
	s := &Stats{
		ByRule:       make(map[string]int),
		ByModule:     make(map[string]int),
		ByRef:        make(map[iso26262.Ref]int),
		ByRuleModule: make(map[string]map[string]int),
	}
	for _, f := range fs {
		s.Total++
		s.ByRule[f.RuleID]++
		s.ByModule[f.Module]++
		for _, ref := range f.Refs {
			s.ByRef[ref]++
		}
		m := s.ByRuleModule[f.RuleID]
		if m == nil {
			m = make(map[string]int)
			s.ByRuleModule[f.RuleID] = m
		}
		m[f.Module]++
	}
	return s
}

// add folds the findings counted in other into s. Every field of Stats
// is an integer count, so folding per-shard partials in any grouping
// yields exactly the Stats a flat Aggregate over the concatenated
// findings would.
func (s *Stats) add(other *Stats) {
	s.Total += other.Total
	for r, n := range other.ByRule {
		s.ByRule[r] += n
	}
	for m, n := range other.ByModule {
		s.ByModule[m] += n
	}
	for ref, n := range other.ByRef {
		s.ByRef[ref] += n
	}
	for r, mods := range other.ByRuleModule {
		dst := s.ByRuleModule[r]
		if dst == nil {
			dst = make(map[string]int, len(mods))
			s.ByRuleModule[r] = dst
		}
		for m, n := range mods {
			dst[m] += n
		}
	}
}

// MergeStats folds per-segment statistics partials (as produced by
// Aggregate over each segment) into one corpus-wide Stats. Used by the
// sharded engine: clean shards contribute their cached partial, so the
// fold costs O(#shards), not O(#findings). Nil partials are skipped.
func MergeStats(parts ...*Stats) *Stats {
	out := &Stats{
		ByRule:       make(map[string]int),
		ByModule:     make(map[string]int),
		ByRef:        make(map[iso26262.Ref]int),
		ByRuleModule: make(map[string]map[string]int),
	}
	for _, p := range parts {
		if p != nil {
			out.add(p)
		}
	}
	return out
}

// Count returns the number of findings for a rule, optionally restricted
// to a module ("" = all modules).
func (s *Stats) Count(rule, module string) int {
	if module == "" {
		return s.ByRule[rule]
	}
	return s.ByRuleModule[rule][module]
}

// Rules returns rule IDs with findings, sorted.
func (s *Stats) Rules() []string {
	out := make([]string, 0, len(s.ByRule))
	for r := range s.ByRule {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Filter returns the findings matching the predicate.
func Filter(fs []Finding, pred func(*Finding) bool) []Finding {
	var out []Finding
	for i := range fs {
		if pred(&fs[i]) {
			out = append(out, fs[i])
		}
	}
	return out
}

// ForRef returns findings evidencing an ISO table row.
func ForRef(fs []Finding, ref iso26262.Ref) []Finding {
	return Filter(fs, func(f *Finding) bool {
		for _, r := range f.Refs {
			if r == ref {
				return true
			}
		}
		return false
	})
}
