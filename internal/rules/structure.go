package rules

import (
	"fmt"
	"sort"

	"repro/internal/ccast"
	"repro/internal/iso26262"
)

var (
	refSingleExit   = iso26262.Ref{Table: iso26262.TableUnit, Item: 1}
	refNoDynamic    = iso26262.Ref{Table: iso26262.TableUnit, Item: 2}
	refInitVars     = iso26262.Ref{Table: iso26262.TableUnit, Item: 3}
	refUniqueNames  = iso26262.Ref{Table: iso26262.TableUnit, Item: 4}
	refNoGlobals    = iso26262.Ref{Table: iso26262.TableUnit, Item: 5}
	refLimitedPtrs  = iso26262.Ref{Table: iso26262.TableUnit, Item: 6}
	refNoJumps      = iso26262.Ref{Table: iso26262.TableUnit, Item: 9}
	refNoHiddenFlow = iso26262.Ref{Table: iso26262.TableUnit, Item: 8}
	refNoRecursion  = iso26262.Ref{Table: iso26262.TableUnit, Item: 10}
	refDesignPrinc  = iso26262.Ref{Table: iso26262.TableCoding, Item: 5}
)

// MultiExitRule flags functions with more than one exit point. The paper
// reports 41% of functions in the object detection module violate this.
type MultiExitRule struct{}

// ID implements Rule.
func (*MultiExitRule) ID() string { return "multi-exit" }

// Describe implements Rule.
func (*MultiExitRule) Describe() string {
	return "functions must have one entry and one exit point (ISO26262-6 T8.1)"
}

// Check implements Rule.
func (r *MultiExitRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, fi := range ctx.Funcs {
		r.funcFindings(fi, em)
	}
	return em.out
}

// funcFindings flags one function from its cached return count. A
// trailing return plus any earlier return means multiple exits; void
// functions with no return have exactly one (fall-through).
func (r *MultiExitRule) funcFindings(fi *FuncInfo, em *Emitter) {
	if n := fi.Returns; n > 1 {
		em.Emit(finding(r.ID(), Violation, fi, fi.Decl.Span().Start.Line,
			fmt.Sprintf("function %s has %d exit points", fi.Decl.Name, n),
			refSingleExit))
	}
}

// Fuse implements FusedRule.
func (r *MultiExitRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnFuncExit(r.funcFindings)
}

// DynamicMemoryRule flags heap allocation: malloc family, C++ new/delete,
// and CUDA device allocations — the paper's Observation 4 territory.
type DynamicMemoryRule struct{}

// ID implements Rule.
func (*DynamicMemoryRule) ID() string { return "dynamic-memory" }

// Describe implements Rule.
func (*DynamicMemoryRule) Describe() string {
	return "no dynamic objects or variables (ISO26262-6 T8.2)"
}

// allocCalls are allocation entry points; cudaMalloc/cudaFree evidence the
// paper's finding that CUDA intrinsically depends on dynamic memory.
var allocCalls = map[string]bool{
	"malloc": true, "calloc": true, "realloc": true, "free": true,
	"cudaMalloc": true, "cudaFree": true, "cudaMallocManaged": true,
	"cudaMallocHost": true, "cudaFreeHost": true,
}

// Check implements Rule.
func (r *DynamicMemoryRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, fi := range ctx.Funcs {
		ccast.WalkExprs(fi.Decl.Body, func(e ccast.Expr) bool {
			r.nodeFindings(fi, e, em)
			return true
		})
	}
	return em.out
}

// nodeFindings flags one allocation site.
func (r *DynamicMemoryRule) nodeFindings(fi *FuncInfo, n ccast.Node, em *Emitter) {
	switch n := n.(type) {
	case *ccast.Call:
		if name := CalleeName(n); allocCalls[name] {
			em.Emit(finding(r.ID(), Violation, fi, n.Span().Start.Line,
				fmt.Sprintf("dynamic memory via %s()", name), refNoDynamic))
		}
	case *ccast.NewExpr:
		em.Emit(finding(r.ID(), Violation, fi, n.Span().Start.Line,
			"dynamic memory via new", refNoDynamic))
	case *ccast.DeleteExpr:
		em.Emit(finding(r.ID(), Violation, fi, n.Span().Start.Line,
			"dynamic memory via delete", refNoDynamic))
	}
}

// Fuse implements FusedRule.
func (r *DynamicMemoryRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnNode(r.nodeFindings, KCall, KNew, KDelete)
}

// PointerRule counts pointer declarations (locals, parameters, globals)
// against "limited use of pointers".
type PointerRule struct{}

// ID implements Rule.
func (*PointerRule) ID() string { return "pointer" }

// Describe implements Rule.
func (*PointerRule) Describe() string {
	return "limited use of pointers (ISO26262-6 T8.6)"
}

// Check implements Rule.
func (r *PointerRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, fi := range ctx.Funcs {
		r.paramFindings(fi, em)
		ccast.Walk(fi.Decl.Body, func(n ccast.Node) bool {
			if ds, ok := n.(*ccast.DeclStmt); ok {
				r.declStmtFindings(fi, ds, em)
			}
			return true
		})
	}
	for _, tu := range ctx.sortedUnits() {
		r.unitFindings(tu, em)
	}
	return em.out
}

// paramFindings flags pointer parameters.
func (r *PointerRule) paramFindings(fi *FuncInfo, em *Emitter) {
	for _, p := range fi.Decl.Params {
		if p.Type.IsPointer() {
			em.Emit(finding(r.ID(), Info, fi, p.Span().Start.Line,
				fmt.Sprintf("pointer parameter %s %s", typeSpelling(p.Type), p.Name),
				refLimitedPtrs))
		}
	}
}

// declStmtFindings flags pointer locals in one declaration statement.
func (r *PointerRule) declStmtFindings(fi *FuncInfo, ds *ccast.DeclStmt, em *Emitter) {
	for _, d := range ds.Decl.Names {
		if d.Type.IsPointer() {
			em.Emit(finding(r.ID(), Info, fi, d.Span().Start.Line,
				fmt.Sprintf("pointer variable %s %s", typeSpelling(d.Type), d.Name),
				refLimitedPtrs))
		}
	}
}

// unitFindings flags file-scope pointer variables.
func (r *PointerRule) unitFindings(tu *ccast.TranslationUnit, em *Emitter) {
	for _, vd := range tu.GlobalVars() {
		for _, d := range vd.Names {
			if d.Type.IsPointer() {
				em.Emit(fileFinding(r.ID(), Warning, tu.File, d.Span().Start.Line,
					fmt.Sprintf("global pointer %s %s", typeSpelling(d.Type), d.Name),
					refLimitedPtrs))
			}
		}
	}
}

// Fuse implements FusedRule.
func (r *PointerRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnFuncEnter(r.paramFindings)
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		r.declStmtFindings(fi, n.(*ccast.DeclStmt), em)
	}, KDeclStmt)
	rg.OnUnit(r.unitFindings)
}

// GlobalVarRule flags file-scope mutable variables (const-qualified
// globals are configuration constants and pass).
type GlobalVarRule struct{}

// ID implements Rule.
func (*GlobalVarRule) ID() string { return "global-var" }

// Describe implements Rule.
func (*GlobalVarRule) Describe() string {
	return "avoid global variables or justify usage (ISO26262-6 T8.5, T1.5)"
}

// Check implements Rule.
func (r *GlobalVarRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, tu := range ctx.sortedUnits() {
		r.unitFindings(tu, em)
	}
	return em.out
}

// unitFindings flags one unit's mutable file-scope variables.
func (r *GlobalVarRule) unitFindings(tu *ccast.TranslationUnit, em *Emitter) {
	for _, vd := range tu.GlobalVars() {
		for _, d := range vd.Names {
			if d.Type.Quals.Has(ccast.QualConst) || d.Type.Quals.Has(ccast.QualConstexpr) {
				continue
			}
			em.Emit(fileFinding(r.ID(), Violation, tu.File, d.Span().Start.Line,
				fmt.Sprintf("global variable %q", d.Name), refNoGlobals, refDesignPrinc))
		}
	}
}

// Fuse implements FusedRule.
func (r *GlobalVarRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnUnit(r.unitFindings)
}

// GotoRule flags unconditional jumps.
type GotoRule struct{}

// ID implements Rule.
func (*GotoRule) ID() string { return "goto" }

// Describe implements Rule.
func (*GotoRule) Describe() string {
	return "no unconditional jumps (ISO26262-6 T8.9)"
}

// Check implements Rule.
func (r *GotoRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, fi := range ctx.Funcs {
		ccast.WalkStmts(fi.Decl.Body, func(s ccast.Stmt) bool {
			if g, ok := s.(*ccast.Goto); ok {
				r.gotoFinding(fi, g, em)
			}
			return true
		})
	}
	return em.out
}

// gotoFinding reports one unconditional jump.
func (r *GotoRule) gotoFinding(fi *FuncInfo, g *ccast.Goto, em *Emitter) {
	em.Emit(finding(r.ID(), Violation, fi, g.Span().Start.Line,
		fmt.Sprintf("goto %s", g.Label), refNoJumps, refNoHiddenFlow))
}

// Fuse implements FusedRule.
func (r *GotoRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		r.gotoFinding(fi, n.(*ccast.Goto), em)
	}, KGoto)
}

// RecursionRule detects direct and mutual recursion over the corpus-wide
// call graph (depth-first cycle detection on unqualified names).
type RecursionRule struct{}

// ID implements Rule.
func (*RecursionRule) ID() string { return "recursion" }

// Describe implements Rule.
func (*RecursionRule) Describe() string {
	return "no recursions (ISO26262-6 T8.10)"
}

// Check implements Rule.
func (r *RecursionRule) Check(ctx *Context) []Finding {
	// Build adjacency over defined functions only.
	adj := make(map[string][]string, len(ctx.ByName))
	for name, fi := range ctx.ByName {
		for _, c := range fi.Callees {
			if _, defined := ctx.ByName[c]; defined {
				adj[name] = append(adj[name], c)
			}
		}
	}
	// Tarjan-style SCC via iterative coloring: a function is recursive if
	// it is on a cycle (including self-loops).
	onCycle := make(map[string]bool)
	var stack []string
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	counter := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		selfLoop := false
		for _, w := range adj[v] {
			if w == v {
				selfLoop = true
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 || selfLoop {
				for _, w := range comp {
					onCycle[w] = true
				}
			}
		}
	}
	names := make([]string, 0, len(ctx.ByName))
	for n := range ctx.ByName {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic traversal order
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	var out []Finding
	for _, n := range names {
		if onCycle[n] {
			fi := ctx.ByName[n]
			out = append(out, finding(r.ID(), Violation, fi, fi.Decl.Span().Start.Line,
				fmt.Sprintf("function %s participates in recursion", fi.Decl.Name),
				refNoRecursion))
		}
	}
	return out
}

// Fuse implements FusedRule. Recursion is inherently corpus-level (SCC
// over the whole call graph), so it registers a corpus hook that runs
// exactly once per engine run.
func (r *RecursionRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnCorpus(func(ctx *Context, em *Emitter) {
		for _, f := range r.Check(ctx) {
			em.Emit(f)
		}
	})
}

// UninitializedRule flags local scalars declared without an initializer
// that are read before any assignment along straight-line statement order
// (a deliberately conservative, flow-insensitive-within-branches check,
// mirroring what "compiler options and static analysis tools" flag).
type UninitializedRule struct{}

// ID implements Rule.
func (*UninitializedRule) ID() string { return "uninit" }

// Describe implements Rule.
func (*UninitializedRule) Describe() string {
	return "initialization of variables (ISO26262-6 T8.3)"
}

// Check implements Rule.
func (r *UninitializedRule) Check(ctx *Context) []Finding {
	var out []Finding
	for _, fi := range ctx.Funcs {
		out = append(out, checkUninitBlock(r.ID(), fi, fi.Decl.Body)...)
	}
	return out
}

// Fuse implements FusedRule. The straight-line initialization analysis
// needs its own block-structured traversal (it prunes under address-of
// and tracks per-block state), so it registers as a whole-function pass.
func (r *UninitializedRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnFunc(func(fi *FuncInfo, em *Emitter) {
		for _, f := range checkUninitBlock(r.ID(), fi, fi.Decl.Body) {
			em.Emit(f)
		}
	})
}

func checkUninitBlock(ruleID string, fi *FuncInfo, b *ccast.Block) []Finding {
	var out []Finding
	if b == nil {
		return nil
	}
	declared := make(map[string]int) // name → decl line, pending init
	markAssigned := func(e ccast.Expr) {
		if id, ok := e.(*ccast.Ident); ok {
			delete(declared, id.Name)
		}
	}
	var checkReads func(n ccast.Node)
	checkReads = func(n ccast.Node) {
		ccast.WalkExprs(n, func(e ccast.Expr) bool {
			if id, ok := e.(*ccast.Ident); ok {
				if line, pending := declared[id.Name]; pending {
					out = append(out, finding(ruleID, Violation, fi, id.Span().Start.Line,
						fmt.Sprintf("variable %q (declared line %d) read before initialization", id.Name, line),
						refInitVars))
					delete(declared, id.Name)
				}
			}
			return true
		})
	}
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ccast.DeclStmt:
			for _, d := range s.Decl.Names {
				if d.Init != nil {
					checkReads(d.Init)
					continue
				}
				// Arrays/records often get filled elementwise; restrict to
				// scalar arithmetic types to stay precise.
				if len(d.Type.ArrayDims) == 0 && d.Type.PtrDepth == 0 &&
					(isIntName(d.Type.Name) || isFloatName(d.Type.Name)) {
					declared[d.Name] = d.Span().Start.Line
				}
			}
		case *ccast.ExprStmt:
			if a, ok := s.X.(*ccast.Assign); ok {
				checkReads(a.R)
				if a.Op != "=" {
					checkReads(a.L)
				}
				markAssigned(a.L)
				continue
			}
			// A call may write through &x: treat address-taken vars as
			// assigned.
			ccast.WalkExprs(s.X, func(e ccast.Expr) bool {
				if u, ok := e.(*ccast.Unary); ok && u.Op == "&" {
					markAssigned(u.X)
					return false
				}
				return true
			})
			checkReads(s.X)
		default:
			// Any control flow: check reads within, then drop tracking of
			// everything it might assign (conservative).
			checkReads(s)
			ccast.WalkExprs(s, func(e ccast.Expr) bool {
				if a, ok := e.(*ccast.Assign); ok {
					markAssigned(a.L)
				}
				if u, ok := e.(*ccast.Unary); ok && u.Op == "&" {
					markAssigned(u.X)
				}
				return true
			})
		}
	}
	return out
}

// ShadowRule flags locals that reuse the name of a file-scope variable or
// of an outer-scope local ("no multiple use of variable names").
type ShadowRule struct{}

// ID implements Rule.
func (*ShadowRule) ID() string { return "shadow" }

// Describe implements Rule.
func (*ShadowRule) Describe() string {
	return "no multiple use of variable names (ISO26262-6 T8.4)"
}

// Check implements Rule.
func (r *ShadowRule) Check(ctx *Context) []Finding {
	var out []Finding
	for _, fi := range ctx.Funcs {
		out = append(out, r.checkFunc(ctx, fi)...)
	}
	return out
}

// Fuse implements FusedRule. Shadowing requires scope-aware recursion
// through nested blocks, so it registers as a whole-function pass.
func (r *ShadowRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnFunc(func(fi *FuncInfo, em *Emitter) {
		for _, f := range r.checkFunc(ctx, fi) {
			em.Emit(f)
		}
	})
}

// checkFunc runs the scoped shadowing analysis over one function. Scopes
// are kept on one name stack with frame marks instead of per-block map
// copies: function scopes hold a handful of names, so a linear scan beats
// allocating and copying a map at every nesting level (this is the rule
// engine's hottest allocation site on large corpora).
func (r *ShadowRule) checkFunc(ctx *Context, fi *FuncInfo) []Finding {
	var out []Finding
	var names []string
	for _, p := range fi.Decl.Params {
		names = append(names, p.Name)
	}
	inScope := func(n string) bool {
		for i := len(names) - 1; i >= 0; i-- {
			if names[i] == n {
				return true
			}
		}
		return false
	}
	var walkBlock func(b *ccast.Block)
	nested := func(s ccast.Stmt) {
		if blk, ok := s.(*ccast.Block); ok {
			walkBlock(blk)
		}
	}
	walkBlock = func(b *ccast.Block) {
		if b == nil {
			return
		}
		mark := len(names)
		for _, s := range b.Stmts {
			switch s := s.(type) {
			case *ccast.DeclStmt:
				for _, d := range s.Decl.Names {
					if inScope(d.Name) {
						out = append(out, finding(r.ID(), Warning, fi, d.Span().Start.Line,
							fmt.Sprintf("declaration of %q shadows an outer declaration", d.Name),
							refUniqueNames, refNoHiddenFlow))
					} else if _, isGlobal := ctx.GlobalNames[d.Name]; isGlobal {
						out = append(out, finding(r.ID(), Warning, fi, d.Span().Start.Line,
							fmt.Sprintf("declaration of %q shadows a global variable", d.Name),
							refUniqueNames, refNoHiddenFlow))
					}
					names = append(names, d.Name)
				}
			case *ccast.Block:
				walkBlock(s)
			case *ccast.If:
				nested(s.Then)
				nested(s.Else)
			case *ccast.While:
				nested(s.Body)
			case *ccast.DoWhile:
				nested(s.Body)
			case *ccast.For:
				forMark := len(names)
				if ds, ok := s.Init.(*ccast.DeclStmt); ok {
					for _, d := range ds.Decl.Names {
						names = append(names, d.Name)
					}
				}
				nested(s.Body)
				names = names[:forMark]
			case *ccast.Switch:
				for _, c := range s.Cases {
					for _, cs := range c.Body {
						if blk, ok := cs.(*ccast.Block); ok {
							walkBlock(blk)
						}
					}
				}
			}
		}
		names = names[:mark]
	}
	walkBlock(fi.Decl.Body)
	return out
}
