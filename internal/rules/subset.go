package rules

import (
	"fmt"
	"strings"

	"repro/internal/ccast"
	"repro/internal/iso26262"
	"repro/internal/metrics"
	"repro/internal/srcfile"
)

var (
	refLowComplexity = iso26262.Ref{Table: iso26262.TableCoding, Item: 1}
	refLangSubset    = iso26262.Ref{Table: iso26262.TableCoding, Item: 2}
)

// ComplexityRule flags functions whose Lizard-style CCN exceeds the
// threshold ("enforcement of low complexity").
type ComplexityRule struct {
	// Threshold is the maximum acceptable CCN; the paper's reference
	// ranges treat >10 as moderate-or-worse.
	Threshold int
}

// ID implements Rule.
func (*ComplexityRule) ID() string { return "complexity" }

// Describe implements Rule.
func (*ComplexityRule) Describe() string {
	return "enforcement of low complexity (ISO26262-6 T1.1)"
}

// Check implements Rule.
func (r *ComplexityRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, fi := range ctx.Funcs {
		r.funcFindings(fi, em)
	}
	return em.out
}

// funcFindings flags one function; the CCN comes from the shared artifact
// cache, so neither engine re-walks the body for complexity.
func (r *ComplexityRule) funcFindings(fi *FuncInfo, em *Emitter) {
	th := r.Threshold
	if th <= 0 {
		th = 10
	}
	ccn := fi.CCN
	if ccn > th {
		sev := Warning
		if ccn > 20 {
			sev = Violation
		}
		em.Emit(finding(r.ID(), sev, fi, fi.Decl.Span().Start.Line,
			fmt.Sprintf("function %s has cyclomatic complexity %d (threshold %d, band %s)",
				fi.Decl.Name, ccn, th, metrics.BandOf(ccn)),
			refLowComplexity))
	}
}

// Fuse implements FusedRule.
func (r *ComplexityRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnFuncExit(r.funcFindings)
}

// LanguageSubsetRule is the MISRA-inspired language-subset checker. It
// implements decidable rules in the spirit of MISRA C:2012 and, for CUDA
// files, records the paper's Observation 3: no language subset exists for
// GPU code, so every kernel construct is flagged as unassessable.
type LanguageSubsetRule struct{}

// ID implements Rule.
func (*LanguageSubsetRule) ID() string { return "lang-subset" }

// Describe implements Rule.
func (*LanguageSubsetRule) Describe() string {
	return "use language subsets / MISRA C (ISO26262-6 T1.2)"
}

// Check implements Rule.
func (r *LanguageSubsetRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, tu := range ctx.sortedUnits() {
		walkDeclNodes(tu, func(n ccast.Node) { r.declFindings(tu, n, em) })
	}
	for _, fi := range ctx.Funcs {
		ccast.Walk(fi.Decl.Body, func(n ccast.Node) bool {
			r.bodyNode(fi, n, em)
			return true
		})
		r.funcEnter(fi, em)
	}
	return em.out
}

// declFindings flags unions (MISRA C:2012 R19.2) and variadic function
// definitions (R17.1 spirit) at declaration level.
func (r *LanguageSubsetRule) declFindings(tu *ccast.TranslationUnit, n ccast.Node, em *Emitter) {
	switch n := n.(type) {
	case *ccast.RecordDecl:
		if n.Kind == ccast.RecordUnion {
			em.Emit(fileFinding(r.ID(), Warning, tu.File, n.Span().Start.Line,
				fmt.Sprintf("union %q used (MISRA C:2012 R19.2)", n.Name), refLangSubset))
		}
	case *ccast.FuncDecl:
		if n.IsDefinition() && n.Variadic {
			em.Emit(fileFinding(r.ID(), Warning, tu.File, n.Span().Start.Line,
				fmt.Sprintf("variadic function %q (MISRA C:2012 R17.1)", n.Name), refLangSubset))
		}
	}
}

// funcEnter records the paper's Observation 3: a CUDA kernel cannot be
// assessed against any existing safety subset.
func (r *LanguageSubsetRule) funcEnter(fi *FuncInfo, em *Emitter) {
	if fi.File.Lang == srcfile.LangCUDA && fi.Decl.IsKernel() {
		em.Emit(finding(r.ID(), Info, fi, fi.Decl.Span().Start.Line,
			fmt.Sprintf("__global__ kernel %s cannot be assessed against MISRA C (no GPU subset)", fi.Decl.Name),
			refLangSubset))
	}
}

// bodyNode flags comma operators, kernel launches, and banned stdlib
// calls inside function bodies.
func (r *LanguageSubsetRule) bodyNode(fi *FuncInfo, n ccast.Node, em *Emitter) {
	switch n := n.(type) {
	case *ccast.Comma:
		em.Emit(finding(r.ID(), Warning, fi, n.Span().Start.Line,
			"comma operator used (MISRA C:2012 R12.3)", refLangSubset))
	case *ccast.KernelLaunch:
		em.Emit(finding(r.ID(), Violation, fi, n.Span().Start.Line,
			"CUDA kernel launch: no safety language subset exists for GPU code (Observation 3)",
			refLangSubset))
	case *ccast.Call:
		if name := CalleeName(n); bannedStdlib[name] {
			em.Emit(finding(r.ID(), Warning, fi, n.Span().Start.Line,
				fmt.Sprintf("%s() banned by MISRA C:2012 R21.x", name), refLangSubset))
		}
	}
}

// Fuse implements FusedRule.
func (r *LanguageSubsetRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnDecl(r.declFindings)
	rg.OnFuncEnter(r.funcEnter)
	rg.OnNode(r.bodyNode, KComma, KKernelLaunch, KCall)
}

// bannedStdlib lists functions MISRA C:2012 Rules 21.x prohibit.
var bannedStdlib = map[string]bool{
	"atoi": true, "atol": true, "atof": true, // R21.7
	"setjmp": true, "longjmp": true, // R21.4
	"abort": true, "exit": true, "system": true, // R21.8
	"rand": true, "srand": true, // R21.24 (2012/AMD1)
	"gets": true,
}

// StyleRule checks Google-C++-style layout properties: 80-column limit,
// no tabs, attached opening braces, two-space indentation steps, and a
// minimum comment density per file.
type StyleRule struct {
	// MaxLine defaults to 80.
	MaxLine int
}

var refStyle = iso26262.Ref{Table: iso26262.TableCoding, Item: 7}

// ID implements Rule.
func (*StyleRule) ID() string { return "style" }

// Describe implements Rule.
func (*StyleRule) Describe() string {
	return "use style guides (ISO26262-6 T1.7)"
}

// Check implements Rule.
func (r *StyleRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, tu := range ctx.sortedUnits() {
		r.scanUnit(tu, em)
	}
	return em.out
}

// scanUnit performs the text-level layout checks for one file.
func (r *StyleRule) scanUnit(tu *ccast.TranslationUnit, em *Emitter) {
	maxLine := r.MaxLine
	if maxLine <= 0 {
		maxLine = 80
	}
	f := tu.File
	lines := strings.Split(f.Src, "\n")
	for i, line := range lines {
		ln := i + 1
		if len(line) > maxLine {
			em.Emit(fileFinding(r.ID(), Info, f, ln,
				fmt.Sprintf("line exceeds %d columns (%d)", maxLine, len(line)), refStyle))
		}
		if strings.Contains(line, "\t") {
			em.Emit(fileFinding(r.ID(), Info, f, ln,
				"tab character used for indentation", refStyle))
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "{" && i > 0 && strings.TrimSpace(lines[i-1]) != "" &&
			!strings.HasSuffix(strings.TrimSpace(lines[i-1]), "{") {
			em.Emit(fileFinding(r.ID(), Info, f, ln,
				"opening brace on its own line (style guide attaches braces)", refStyle))
		}
	}
}

// Fuse implements FusedRule.
func (r *StyleRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnUnit(r.scanUnit)
}

// NamingRule enforces Google-style naming: types CamelCase; functions
// CamelCase (or lower_snake for C files); variables lower_snake; constants
// and globals prefixed (kConst / g_global); class members trailing "_".
type NamingRule struct{}

var refNaming = iso26262.Ref{Table: iso26262.TableCoding, Item: 8}

// ID implements Rule.
func (*NamingRule) ID() string { return "naming" }

// Describe implements Rule.
func (*NamingRule) Describe() string {
	return "use naming conventions (ISO26262-6 T1.8)"
}

// Check implements Rule.
func (r *NamingRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, tu := range ctx.sortedUnits() {
		walkDeclNodes(tu, func(n ccast.Node) { r.declFindings(tu, n, em) })
	}
	return em.out
}

// declFindings checks one declaration-level node against the conventions.
func (r *NamingRule) declFindings(tu *ccast.TranslationUnit, n ccast.Node, em *Emitter) {
	isC := tu.File.Lang == srcfile.LangC
	switch n := n.(type) {
	case *ccast.RecordDecl:
		if n.Name != "" && !isCamelCase(n.Name) {
			em.Emit(fileFinding(r.ID(), Warning, tu.File, n.Span().Start.Line,
				fmt.Sprintf("type %q should be CamelCase", n.Name), refNaming))
		}
	case *ccast.EnumDecl:
		if n.Name != "" && !isCamelCase(n.Name) {
			em.Emit(fileFinding(r.ID(), Warning, tu.File, n.Span().Start.Line,
				fmt.Sprintf("enum %q should be CamelCase", n.Name), refNaming))
		}
	case *ccast.FuncDecl:
		base := UnqualifiedName(n.Name)
		if base == "" || strings.HasPrefix(base, "~") || base == "main" {
			return
		}
		if isC || n.IsKernel() {
			if !isLowerSnake(base) {
				em.Emit(fileFinding(r.ID(), Warning, tu.File, n.Span().Start.Line,
					fmt.Sprintf("C function %q should be lower_snake_case", base), refNaming))
			}
		} else if !isCamelCase(base) && !isLowerSnake(base) {
			em.Emit(fileFinding(r.ID(), Warning, tu.File, n.Span().Start.Line,
				fmt.Sprintf("function %q violates naming conventions", base), refNaming))
		}
	}
}

// Fuse implements FusedRule.
func (r *NamingRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnDecl(r.declFindings)
}

func isCamelCase(s string) bool {
	if s == "" || s[0] < 'A' || s[0] > 'Z' {
		return false
	}
	return !strings.Contains(s, "_")
}

func isLowerSnake(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			return false
		}
	}
	return true
}
