package rules

import (
	"fmt"

	"repro/internal/ccast"
	"repro/internal/iso26262"
)

// refStrongTyping is Table 1 item 3; refNoImplicitConv is Table 8 item 7.
var (
	refStrongTyping   = iso26262.Ref{Table: iso26262.TableCoding, Item: 3}
	refNoImplicitConv = iso26262.Ref{Table: iso26262.TableUnit, Item: 7}
)

// CastRule reports every explicit cast: the paper counts >1,400 explicit
// castings in Apollo as evidence against "enforcement of strong typing".
type CastRule struct{}

// ID implements Rule.
func (*CastRule) ID() string { return "cast" }

// Describe implements Rule.
func (*CastRule) Describe() string {
	return "explicit type casts weaken strong typing (ISO26262-6 T1.3)"
}

// Check implements Rule.
func (r *CastRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	for _, fi := range ctx.Funcs {
		ccast.WalkExprs(fi.Decl.Body, func(e ccast.Expr) bool {
			if c, ok := e.(*ccast.Cast); ok {
				r.castFinding(fi, c, em)
			}
			return true
		})
	}
	return em.out
}

// castFinding reports one explicit cast.
func (r *CastRule) castFinding(fi *FuncInfo, c *ccast.Cast, em *Emitter) {
	em.Emit(finding(r.ID(), Warning, fi, c.Span().Start.Line,
		fmt.Sprintf("explicit %s cast to %s", c.Style, typeSpelling(c.To)),
		refStrongTyping))
}

// Fuse implements FusedRule.
func (r *CastRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		r.castFinding(fi, n.(*ccast.Cast), em)
	}, KCast)
}

// ImplicitConversionRule flags assignments and initializations whose
// right-hand side has a different arithmetic category than the declared
// left-hand type (int <- float and float <- int), using local declaration
// type information only. Cross-file inference is out of scope and the
// corresponding uncertainty is documented in DESIGN.md.
type ImplicitConversionRule struct{}

// ID implements Rule.
func (*ImplicitConversionRule) ID() string { return "implicit-conv" }

// Describe implements Rule.
func (*ImplicitConversionRule) Describe() string {
	return "implicit arithmetic conversions (ISO26262-6 T8.7)"
}

// Check implements Rule.
func (r *ImplicitConversionRule) Check(ctx *Context) []Finding {
	em := &Emitter{}
	localTypes := make(map[string]string)
	for _, fi := range ctx.Funcs {
		r.seedParams(fi, localTypes)
		ccast.Walk(fi.Decl.Body, func(n ccast.Node) bool {
			switch n := n.(type) {
			case *ccast.DeclStmt:
				r.declFindings(fi, n, localTypes, em)
			case *ccast.Assign:
				r.assignFindings(fi, n, localTypes, em)
			}
			return true
		})
	}
	return em.out
}

// seedParams resets the local type table to the function's scalar params.
func (r *ImplicitConversionRule) seedParams(fi *FuncInfo, localTypes map[string]string) {
	clear(localTypes)
	for _, p := range fi.Decl.Params {
		if p.Name != "" && p.Type.PtrDepth == 0 {
			localTypes[p.Name] = p.Type.Name
		}
	}
}

// declFindings records declared types and checks initializers.
func (r *ImplicitConversionRule) declFindings(fi *FuncInfo, n *ccast.DeclStmt, localTypes map[string]string, em *Emitter) {
	for _, d := range n.Decl.Names {
		if d.Type.PtrDepth == 0 {
			localTypes[d.Name] = d.Type.Name
		}
		if d.Init != nil {
			if cat := exprCategory(d.Init, localTypes); cat != "" {
				if mismatch(d.Type.Name, cat) {
					em.Emit(finding(r.ID(), Warning, fi, d.Span().Start.Line,
						fmt.Sprintf("implicit conversion: %s initialized from %s expression", d.Type.Name, cat),
						refNoImplicitConv, refStrongTyping))
				}
			}
		}
	}
}

// assignFindings checks one simple assignment for a category mismatch.
func (r *ImplicitConversionRule) assignFindings(fi *FuncInfo, n *ccast.Assign, localTypes map[string]string, em *Emitter) {
	if n.Op != "=" {
		return
	}
	lt := lvalueType(n.L, localTypes)
	if lt == "" {
		return
	}
	if cat := exprCategory(n.R, localTypes); cat != "" && mismatch(lt, cat) {
		em.Emit(finding(r.ID(), Warning, fi, n.Span().Start.Line,
			fmt.Sprintf("implicit conversion: %s assigned from %s expression", lt, cat),
			refNoImplicitConv, refStrongTyping))
	}
}

// Fuse implements FusedRule. The local type table lives in the worker's
// closure and is reseeded at every function entry; DeclStmt and Assign
// events arrive in the same DFS order the sequential walk used, so the
// table evolves identically.
func (r *ImplicitConversionRule) Fuse(rg *Registrar, ctx *Context) {
	localTypes := make(map[string]string)
	rg.OnFuncEnter(func(fi *FuncInfo, em *Emitter) {
		r.seedParams(fi, localTypes)
	})
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		switch n := n.(type) {
		case *ccast.DeclStmt:
			r.declFindings(fi, n, localTypes, em)
		case *ccast.Assign:
			r.assignFindings(fi, n, localTypes, em)
		}
	}, KDeclStmt, KAssign)
}

func typeSpelling(t *ccast.Type) string {
	if t == nil {
		return "?"
	}
	s := t.Name
	for i := 0; i < t.PtrDepth; i++ {
		s += "*"
	}
	return s
}

func isIntName(name string) bool {
	switch name {
	case "int", "long", "short", "char", "unsigned", "signed",
		"unsigned int", "long long", "unsigned long", "size_t",
		"int8_t", "int16_t", "int32_t", "int64_t",
		"uint8_t", "uint16_t", "uint32_t", "uint64_t", "bool", "_Bool":
		return true
	}
	return false
}

func isFloatName(name string) bool {
	switch name {
	case "float", "double", "long double":
		return true
	}
	return false
}

// mismatch reports an int<->float category difference.
func mismatch(declared, category string) bool {
	if isIntName(declared) && category == "float" {
		return true
	}
	if isFloatName(declared) && category == "int" {
		return true
	}
	return false
}

// exprCategory infers "int", "float", or "" (unknown) for an expression.
func exprCategory(e ccast.Expr, localTypes map[string]string) string {
	switch e := e.(type) {
	case *ccast.IntLit:
		return "int"
	case *ccast.FloatLit:
		return "float"
	case *ccast.CharLit:
		return "int"
	case *ccast.BoolLit:
		return "int"
	case *ccast.Ident:
		if t, ok := localTypes[e.Name]; ok {
			if isIntName(t) {
				return "int"
			}
			if isFloatName(t) {
				return "float"
			}
		}
		return ""
	case *ccast.Paren:
		return exprCategory(e.X, localTypes)
	case *ccast.Unary:
		if e.Op == "-" || e.Op == "+" || e.Op == "~" {
			return exprCategory(e.X, localTypes)
		}
		return ""
	case *ccast.Cast:
		// An explicit cast fixes the category: no implicit conversion.
		if isIntName(e.To.Name) && e.To.PtrDepth == 0 {
			return "int"
		}
		if isFloatName(e.To.Name) {
			return "float"
		}
		return ""
	case *ccast.Binary:
		switch e.Op {
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
			return "int"
		}
		l := exprCategory(e.L, localTypes)
		rr := exprCategory(e.R, localTypes)
		if l == "float" || rr == "float" {
			return "float"
		}
		if l == "int" && rr == "int" {
			return "int"
		}
		return ""
	default:
		return ""
	}
}

// lvalueType returns the declared type name of a simple lvalue.
func lvalueType(e ccast.Expr, localTypes map[string]string) string {
	if id, ok := e.(*ccast.Ident); ok {
		return localTypes[id.Name]
	}
	return ""
}
