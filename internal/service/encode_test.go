package service

// writeJSON must not hand a client a complete-looking 200 whose body
// silently died mid-encode: a failure after the status line aborts the
// connection so the client observes a broken transfer.

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
)

// unencodable fails encoding only when marshaled, after the status line
// is committed.
type unencodable struct{ Ch chan int }

func TestEncodeFailureAbortsConnection(t *testing.T) {
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/gzip" {
			writeJSONNegotiated(w, r, http.StatusOK, unencodable{})
			return
		}
		writeJSON(w, http.StatusOK, unencodable{})
	}))
	// The abort surfaces server-side as a recovered panic; keep its
	// stack trace out of the test log.
	ts.Config.ErrorLog = log.New(io.Discard, "", 0)
	ts.Start()
	defer ts.Close()

	for _, path := range []string{"/plain", "/gzip"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			continue // connection died before the status line: aborted, good
		}
		body, rerr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if rerr == nil {
			t.Fatalf("%s: encode failure produced a clean %d response with body %q; want an aborted transfer",
				path, resp.StatusCode, body)
		}
	}
}
