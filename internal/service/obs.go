package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// The observability layer: every route runs under the instrument
// middleware, which counts the request into the per-endpoint series,
// observes its latency, carries a per-request obs.Span through the
// context for the delta pipeline's phase breakdown, and (opt-in)
// writes slow requests to the structured trace log. The registry is
// per-Server — two servers in one process (tests, the load harness's
// fresh-server attempts) never share counters — and all hot-path
// recording is lock-free atomic adds: registration happens once in
// New, never on a request path.

// metricEndpoints is every instrumented route, sorted; the fixed list
// pre-registers the full endpoint x class matrix at construction so
// /metrics exposes an identical series set regardless of traffic.
var metricEndpoints = []string{
	"/assess", "/delta", "/findings", "/healthz",
	"/metrics", "/report", "/snapshot", "/statz",
}

// statusClasses partitions response statuses; index status/100-2.
var statusClasses = []string{"2xx", "3xx", "4xx", "5xx"}

// deltaPhases is every span phase the delta pipeline and the read
// renders record, pre-registered as histogram series.
var deltaPhases = []string{
	"prepare", "commit", "journal_stage", "assess", "sync_barrier", "render",
}

// endpointMetrics is one route's pre-registered instruments. The zero
// value (all-nil instruments) is a valid no-op sink.
type endpointMetrics struct {
	latency *obs.Histogram
	byClass [4]*obs.Counter
}

// classCounter maps a status code to its class counter (out-of-range
// codes clamp into the nearest class).
func (em *endpointMetrics) classCounter(status int) *obs.Counter {
	i := status/100 - 2
	if i < 0 {
		i = 0
	}
	if i >= len(em.byClass) {
		i = len(em.byClass) - 1
	}
	return em.byClass[i]
}

// serverMetrics is the per-Server registry plus the instruments the
// handlers record into directly.
type serverMetrics struct {
	reg       *obs.Registry
	endpoints map[string]*endpointMetrics

	// deltasAcked counts /delta requests acknowledged with 200 — the
	// server-side mirror of a load client's success count — and
	// deltaFilesAcked the file operations (changed + removed) those
	// requests carried.
	deltasAcked     *obs.Counter
	deltaFilesAcked *obs.Counter

	// phases holds one histogram per known span phase name.
	phases map[string]*obs.Histogram

	// dirtyShards observes, per committed delta, how many shards the
	// index refresh actually touched; parWidth is the worker width the
	// last shard-parallel refresh ran at.
	dirtyShards *obs.Histogram
	parWidth    *obs.Gauge

	// journal is handed to every corpus store (store.SetMetrics); all
	// corpora of the server share these series.
	journal *store.JournalMetrics
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:       reg,
		endpoints: make(map[string]*endpointMetrics, len(metricEndpoints)),
		phases:    make(map[string]*obs.Histogram, len(deltaPhases)),
	}
	for _, ep := range metricEndpoints {
		em := &endpointMetrics{}
		for i, class := range statusClasses {
			em.byClass[i] = reg.Counter("adserve_requests_total",
				"HTTP requests served, by endpoint and status class.",
				obs.L("endpoint", ep), obs.L("class", class))
		}
		em.latency = reg.Histogram("adserve_request_latency_ns",
			"Request wall time in nanoseconds, by endpoint.",
			obs.L("endpoint", ep))
		m.endpoints[ep] = em
	}
	m.deltasAcked = reg.Counter("adserve_deltas_acked_total",
		"POST /delta requests acknowledged with 200 (journaled and durable on persistent servers).")
	m.deltaFilesAcked = reg.Counter("adserve_delta_files_acked_total",
		"File operations (changed plus removed) carried by acknowledged deltas.")
	for _, ph := range deltaPhases {
		m.phases[ph] = reg.Histogram("adserve_delta_phase_ns",
			"Delta pipeline phase wall time in nanoseconds, by phase.",
			obs.L("phase", ph))
	}
	m.dirtyShards = reg.Histogram("adserve_delta_dirty_shards",
		"Shards refreshed per committed delta (the O(dirty shard) claim, measured).")
	m.parWidth = reg.Gauge("adserve_delta_par_width",
		"Worker width of the most recent shard-parallel index refresh.")
	m.journal = &store.JournalMetrics{
		Staged: reg.Counter("adserve_journal_records_staged_total",
			"Journal records staged (one per non-empty commit on persistent servers)."),
		Fsyncs: reg.Counter("adserve_journal_fsyncs_total",
			"Record-durability fsyncs issued; group commit amortizes this below one per record."),
		BatchRecords: reg.Histogram("adserve_journal_batch_records",
			"Records newly made durable per fsync (the group-commit batch size)."),
	}
	return m
}

// Metrics exposes the server's registry (tests and embedders).
func (s *Server) Metrics() *obs.Registry { return s.obs.reg }

// spanKey carries the request span through the context.
type spanKey struct{}

// spanFrom returns the request's span, or nil (a no-op span) when the
// handler runs outside the instrument middleware.
func spanFrom(ctx context.Context) *obs.Span {
	sp, _ := ctx.Value(spanKey{}).(*obs.Span)
	return sp
}

// statusWriter records the response status and counts the request into
// its class series at header-write time — before the body, so by the
// time a client can observe a complete response the counter already
// includes it (the /statz diff oracle in the load harness depends on
// this ordering).
type statusWriter struct {
	http.ResponseWriter
	em     *endpointMetrics
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		w.em.classCounter(code).Inc()
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
		w.em.classCounter(http.StatusOK).Inc()
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps one route with request accounting, span propagation,
// and slow-request tracing. The deferred recording runs on panics too
// (abortOnEncodeErr kills connections by design), then re-panics
// naturally as the defer unwinds.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.obs.endpoints[endpoint]
	if em == nil {
		em = &endpointMetrics{} // unlisted route: valid no-op sink
	}
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.StartSpan()
		sw := &statusWriter{ResponseWriter: w, em: em}
		defer func() {
			total := sp.Total()
			em.latency.Observe(total.Nanoseconds())
			if sw.status == 0 {
				// Nothing was written: the handler died before its
				// response. Count the aborted connection as a 5xx.
				sw.status = http.StatusInternalServerError
				em.classCounter(sw.status).Inc()
			}
			for _, ph := range sp.Phases() {
				s.obs.phases[ph.Name].Observe(ph.Ns)
			}
			s.traceRequest(endpoint, sw.status, total, sp)
		}()
		h(sw, r.WithContext(context.WithValue(r.Context(), spanKey{}, sp)))
	}
}

// traceRecord is one slow-request trace-log line.
type traceRecord struct {
	Time     string            `json:"time"`
	Endpoint string            `json:"endpoint"`
	Status   int               `json:"status"`
	TotalNs  int64             `json:"total_ns"`
	Phases   []obs.SpanPhase   `json:"phases,omitempty"`
	Notes    map[string]string `json:"notes,omitempty"`
}

// traceRequest writes one JSON line for a request at or above the
// threshold. TraceLog and TraceThreshold are configured before serving
// starts and never mutated after; traceMu only serializes writers so
// concurrent lines never interleave.
func (s *Server) traceRequest(endpoint string, status int, total time.Duration, sp *obs.Span) {
	out := s.TraceLog
	if out == nil || total < s.TraceThreshold {
		return
	}
	rec := traceRecord{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Endpoint: endpoint,
		Status:   status,
		TotalNs:  total.Nanoseconds(),
		Phases:   sp.Phases(),
	}
	if notes := sp.Notes(); len(notes) > 0 {
		rec.Notes = make(map[string]string, len(notes))
		for _, n := range notes {
			rec.Notes[n.Key] = n.Value
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.traceMu.Lock()
	_, _ = out.Write(line)
	s.traceMu.Unlock()
}

// handleMetrics serves GET /metrics in Prometheus text exposition
// format (rendered to a buffer first: a half-written exposition is
// worse than a 500).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var buf bytes.Buffer
	if err := s.obs.reg.WritePrometheus(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// StatzResponse answers GET /statz: the same registry as /metrics, as
// JSON for programmatic clients (the load harness's diff oracle).
type StatzResponse struct {
	Metrics []obs.MetricValue `json:"metrics"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, StatzResponse{Metrics: s.obs.reg.Snapshot()})
}
