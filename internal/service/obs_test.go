package service_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// fetchText GETs url and returns status, body, and headers.
func fetchText(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// statzCounter sums the named counter's series from a /statz response,
// keeping only series whose labels include every pair of want.
func statzCounter(t *testing.T, url string, name string, want map[string]string) int64 {
	t.Helper()
	var snap service.StatzResponse
	if code, body := getJSON(t, url+"/statz", &snap); code != http.StatusOK {
		t.Fatalf("/statz = %d: %s", code, body)
	}
	var total int64
	for _, m := range snap.Metrics {
		if m.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if m.Labels[k] != v {
				ok = false
			}
		}
		if ok {
			total += m.Value
		}
	}
	return total
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatalf("/assess = %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus:  "c1",
		Changed: map[string]string{"m/b.c": "int fb(int x) { return x + 1; }\n"},
	}, nil); code != http.StatusOK {
		t.Fatalf("/delta = %d", code)
	}

	code, body, hdr := fetchText(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if cc := hdr.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`adserve_deltas_acked_total 1`,
		`adserve_requests_total{endpoint="/assess",class="2xx"} 1`,
		`adserve_requests_total{endpoint="/delta",class="2xx"} 1`,
		"# TYPE adserve_request_latency_ns histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// A second scrape must still validate (the first scrape's own
	// request is now part of the data).
	_, body2, _ := fetchText(t, ts.URL+"/metrics")
	if err := obs.ValidateExposition(body2); err != nil {
		t.Fatalf("second exposition invalid: %v", err)
	}
}

// metricsStructure strips an exposition down to its structure: comment
// lines verbatim, sample lines truncated at the value.
func metricsStructure(body string) []string {
	var out []string
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			out = append(out, line)
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			line = line[:i]
		}
		out = append(out, line)
	}
	return out
}

func TestMetricsStructureDeterministic(t *testing.T) {
	// Two servers with different traffic must expose the exact same
	// series in the exact same order: every series is pre-registered at
	// construction, none appear on first use.
	a := newTestServer(t)
	b := newTestServer(t)
	if code, _ := postJSON(t, b.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatal("assess failed")
	}
	for i := 0; i < 3; i++ {
		fetchText(t, b.URL+"/report?corpus=c1")
	}

	_, bodyA, _ := fetchText(t, a.URL+"/metrics")
	_, bodyB, _ := fetchText(t, b.URL+"/metrics")
	sa, sb := metricsStructure(bodyA), metricsStructure(bodyB)
	if len(sa) != len(sb) {
		t.Fatalf("structure line counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("structure diverges at line %d: %q vs %q", i, sa[i], sb[i])
		}
	}
}

func TestStatzCounts(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatal("assess failed")
	}
	for i := 0; i < 2; i++ {
		code, _ := postJSON(t, ts.URL+"/delta", service.DeltaRequest{
			Corpus: "c1",
			Changed: map[string]string{
				"m/b.c": "int fb(int x) { return x + " + string(rune('1'+i)) + "; }\n",
			},
		}, nil)
		if code != http.StatusOK {
			t.Fatalf("/delta %d = %d", i, code)
		}
	}
	// A delta that fails validation must not count as acked.
	if code, _ := postJSON(t, ts.URL+"/delta",
		service.DeltaRequest{Corpus: "nope", Changed: map[string]string{"x.c": "int x;"}}, nil); code == http.StatusOK {
		t.Fatal("delta against missing corpus unexpectedly succeeded")
	}

	if got := statzCounter(t, ts.URL, "adserve_deltas_acked_total", nil); got != 2 {
		t.Errorf("deltas acked = %d, want 2", got)
	}
	if got := statzCounter(t, ts.URL, "adserve_delta_files_acked_total", nil); got != 2 {
		t.Errorf("delta files acked = %d, want 2", got)
	}
	if got := statzCounter(t, ts.URL, "adserve_requests_total",
		map[string]string{"endpoint": "/delta", "class": "2xx"}); got != 2 {
		t.Errorf("/delta 2xx = %d, want 2", got)
	}
	if got := statzCounter(t, ts.URL, "adserve_requests_total",
		map[string]string{"endpoint": "/delta", "class": "4xx"}); got != 1 {
		t.Errorf("/delta 4xx = %d, want 1", got)
	}
	// The latency histogram must agree with the counters: three /delta
	// requests were observed.
	if got := statzCounter(t, ts.URL, "adserve_request_latency_ns",
		map[string]string{"endpoint": "/delta"}); got != 3 {
		t.Errorf("/delta latency observations = %d, want 3", got)
	}
}

func TestCacheControlNoStore(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatal("assess failed")
	}
	for _, path := range []string{
		"/metrics", "/statz", "/report?corpus=c1", "/findings?corpus=c1",
	} {
		code, _, hdr := fetchText(t, ts.URL+path)
		if code != http.StatusOK {
			t.Fatalf("%s = %d", path, code)
		}
		if cc := hdr.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s: Cache-Control = %q, want no-store", path, cc)
		}
	}
}

// syncBuf is a goroutine-safe trace-log sink.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// traceLine mirrors the service's trace-log record.
type traceLine struct {
	Endpoint string `json:"endpoint"`
	Status   int    `json:"status"`
	TotalNs  int64  `json:"total_ns"`
	Phases   []struct {
		Name string `json:"name"`
		Ns   int64  `json:"ns"`
	} `json:"phases"`
	Notes map[string]string `json:"notes"`
}

// waitTraceLines polls the sink until want complete lines are present
// (the trace write runs after the response reaches the client).
func waitTraceLines(t *testing.T, sink *syncBuf, want int) []traceLine {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw := sink.String()
		lines := strings.Split(strings.TrimSuffix(raw, "\n"), "\n")
		if raw != "" && strings.HasSuffix(raw, "\n") && len(lines) >= want {
			out := make([]traceLine, len(lines))
			for i, l := range lines {
				if err := json.Unmarshal([]byte(l), &out[i]); err != nil {
					t.Fatalf("trace line %d: %v (%q)", i, err, l)
				}
			}
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace log has %d lines, want %d:\n%s", len(lines), want, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTraceSpanBreakdown(t *testing.T) {
	svc := service.New()
	sink := &syncBuf{}
	svc.TraceLog = sink
	svc.TraceThreshold = 0 // trace everything
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	if code, _ := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatal("assess failed")
	}
	if code, _ := postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus:  "c1",
		Changed: map[string]string{"m/b.c": "int fb(int x) { return x - 1; }\n"},
	}, nil); code != http.StatusOK {
		t.Fatal("delta failed")
	}
	if code, _, _ := fetchText(t, ts.URL+"/report?corpus=c1"); code != http.StatusOK {
		t.Fatal("report failed")
	}

	recs := waitTraceLines(t, sink, 3)
	byEndpoint := map[string]traceLine{}
	for _, r := range recs {
		byEndpoint[r.Endpoint] = r
	}

	// Every record's phase breakdown must sum to at most the request
	// total: phases are disjoint sub-intervals of the handler.
	for _, r := range recs {
		var sum int64
		for _, p := range r.Phases {
			if p.Ns < 0 {
				t.Errorf("%s: negative phase %s", r.Endpoint, p.Name)
			}
			sum += p.Ns
		}
		if sum > r.TotalNs {
			t.Errorf("%s: phase sum %d exceeds total %d", r.Endpoint, sum, r.TotalNs)
		}
	}

	d, ok := byEndpoint["/delta"]
	if !ok {
		t.Fatal("no /delta trace record")
	}
	phases := map[string]bool{}
	for _, p := range d.Phases {
		phases[p.Name] = true
	}
	for _, want := range []string{"prepare", "journal_stage", "commit", "assess"} {
		if !phases[want] {
			t.Errorf("/delta trace missing phase %q (got %v)", want, d.Phases)
		}
	}
	if d.Notes["corpus"] != "c1" {
		t.Errorf("/delta trace corpus note = %q, want c1", d.Notes["corpus"])
	}
	rep, ok := byEndpoint["/report"]
	if !ok {
		t.Fatal("no /report trace record")
	}
	if len(rep.Phases) == 0 || rep.Phases[0].Name != "render" {
		t.Errorf("/report trace phases = %v, want render", rep.Phases)
	}
}
