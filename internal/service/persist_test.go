package service_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
	"repro/internal/store"
)

// newPersistentServer boots a store-backed service over dir and returns
// the test server, the service (for Close), and the restore report.
func newPersistentServer(t *testing.T, dir string) (*httptest.Server, *service.Server, []service.RestoredCorpus) {
	t.Helper()
	d, err := store.Open(dir, store.Options{MaxJournalRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	svc, restored, err := service.NewWithStore(d)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts, svc, restored
}

// TestPersistenceAcrossRestarts is the service-level recovery loop:
// assess, delta (journaled before ack), kill the server object, boot a
// fresh one over the same directory, and require the identical report.
func TestPersistenceAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	ts1, svc1, restored := newPersistentServer(t, dir)
	if len(restored) != 0 {
		t.Fatalf("fresh data dir restored %v", restored)
	}

	if code, body := postJSON(t, ts1.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatalf("assess: %d %s", code, body)
	}
	var dresp service.DeltaResponse
	if code, body := postJSON(t, ts1.URL+"/delta", service.DeltaRequest{
		Corpus:  "c1",
		Changed: map[string]string{"m/a.c": "int ga;\nint fa(int x) { return x; }\n"},
	}, &dresp); code != http.StatusOK {
		t.Fatalf("delta: %d %s", code, body)
	}
	if dresp.Journal == nil || dresp.Journal.Records != 1 {
		t.Fatalf("delta response journal = %+v, want 1 record", dresp.Journal)
	}
	_, report1 := getJSON(t, ts1.URL+"/report?corpus=c1", nil)
	// Simulated crash: no Close, no snapshot of the delta — recovery
	// must come from the initial snapshot plus the journal.
	ts1.Close()

	ts2, svc2, restored2 := newPersistentServer(t, dir)
	if len(restored2) != 1 || restored2[0].Name != "c1" || restored2[0].Replayed != 1 ||
		restored2[0].Clean || restored2[0].Torn {
		t.Fatalf("restored = %+v, want c1 with 1 replayed record", restored2)
	}
	_, report2 := getJSON(t, ts2.URL+"/report?corpus=c1", nil)
	if report1 != report2 {
		t.Fatalf("restored report diverges:\nbefore %.200s\nafter  %.200s", report1, report2)
	}

	// Clean shutdown drains to a fresh snapshot + marker; the next boot
	// replays nothing.
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	_, svc3, restored3 := newPersistentServer(t, dir)
	if len(restored3) != 1 || !restored3[0].Clean || restored3[0].Replayed != 0 {
		t.Fatalf("post-clean-shutdown restore = %+v, want clean with 0 replayed", restored3)
	}
	svc3.Close()
	_ = svc1
}

// TestSnapshotEndpointCompacts pins POST /snapshot: the journal is
// absorbed and a crash right after loses nothing.
func TestSnapshotEndpointCompacts(t *testing.T) {
	dir := t.TempDir()
	ts, _, _ := newPersistentServer(t, dir)
	if code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatalf("assess: %d %s", code, body)
	}
	postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus: "c1", Changed: map[string]string{"m/new.c": "int fnew(void) { return 2; }\n"}}, nil)

	var sresp service.SnapshotResponse
	if code, body := postJSON(t, ts.URL+"/snapshot", service.SnapshotRequest{Corpus: "c1"}, &sresp); code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", code, body)
	}
	if sresp.Files != 4 || sresp.SnapshotBytes <= 0 {
		t.Fatalf("snapshot response = %+v", sresp)
	}
	_, report1 := getJSON(t, ts.URL+"/report?corpus=c1", nil)
	ts.Close() // crash

	ts2, svc2, restored := newPersistentServer(t, dir)
	if len(restored) != 1 || restored[0].Replayed != 0 {
		t.Fatalf("restore after /snapshot = %+v, want 0 replayed", restored)
	}
	_, report2 := getJSON(t, ts2.URL+"/report?corpus=c1", nil)
	if report1 != report2 {
		t.Fatal("report diverges after /snapshot-backed restore")
	}
	svc2.Close()

	// /snapshot on unknown corpora and in-memory servers is an error.
	if code, _ := postJSON(t, ts2.URL+"/snapshot", service.SnapshotRequest{Corpus: "nope"}, nil); code != http.StatusNotFound {
		t.Fatalf("snapshot of unknown corpus: %d, want 404", code)
	}
	mem := httptest.NewServer(service.New().Handler())
	defer mem.Close()
	if code, _ := postJSON(t, mem.URL+"/snapshot", service.SnapshotRequest{Corpus: "c1"}, nil); code != http.StatusBadRequest {
		t.Fatalf("snapshot on in-memory server: %d, want 400", code)
	}
}

// TestDeltaTriggersCompaction drives the journal past its record
// threshold and expects the service to absorb it into a snapshot.
func TestDeltaTriggersCompaction(t *testing.T) {
	dir := t.TempDir()
	ts, svc, _ := newPersistentServer(t, dir) // MaxJournalRecords: 3
	if code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatalf("assess: %d %s", code, body)
	}
	var last service.DeltaResponse
	for i := 0; i < 3; i++ {
		src := "int fa(int x) { return x + " + string(rune('0'+i)) + "; }\n"
		if code, body := postJSON(t, ts.URL+"/delta", service.DeltaRequest{
			Corpus: "c1", Changed: map[string]string{"m/a.c": src}}, &last); code != http.StatusOK {
			t.Fatalf("delta %d: %d %s", i, code, body)
		}
	}
	if !last.Journal.Compacted || last.Journal.Records != 0 {
		t.Fatalf("third delta journal = %+v, want compacted with 0 records", last.Journal)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStorableCorpusNames pins the persistent-server name restriction.
func TestStorableCorpusNames(t *testing.T) {
	ts, svc, _ := newPersistentServer(t, t.TempDir())
	defer svc.Close()
	if code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "../escape", Files: smallCorpus()}, nil); code != http.StatusBadRequest {
		t.Fatalf("traversal corpus name: %d %s, want 400", code, body)
	}
}

// TestContentTypeAndGzip pins Content-Type on every endpoint and gzip
// negotiation on the bulk read endpoints.
func TestContentTypeAndGzip(t *testing.T) {
	ts := newTestServer(t)
	if code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatalf("assess: %d %s", code, body)
	}

	// A transport with DisableCompression neither sends Accept-Encoding
	// nor transparently decodes — it sees the raw negotiation.
	rawClient := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	fetch := func(path, accept string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept-Encoding", accept)
		}
		resp, err := rawClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	for _, path := range []string{"/report?corpus=c1", "/findings?corpus=c1", "/healthz", "/nothing-registered"} {
		resp, _ := fetch(path, "")
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" && resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: Content-Type %q", path, ct)
		}
	}

	for _, path := range []string{"/report?corpus=c1", "/findings?corpus=c1"} {
		plainResp, plain := fetch(path, "")
		if enc := plainResp.Header.Get("Content-Encoding"); enc != "" {
			t.Fatalf("%s without Accept-Encoding got Content-Encoding %q", path, enc)
		}
		gzResp, gzBody := fetch(path, "gzip")
		if enc := gzResp.Header.Get("Content-Encoding"); enc != "gzip" {
			t.Fatalf("%s with Accept-Encoding: gzip got Content-Encoding %q", path, enc)
		}
		if ct := gzResp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s gzip response Content-Type %q", path, ct)
		}
		if vary := gzResp.Header.Get("Vary"); vary != "Accept-Encoding" {
			t.Fatalf("%s gzip response Vary %q", path, vary)
		}
		zr, err := gzip.NewReader(bytes.NewReader(gzBody))
		if err != nil {
			t.Fatal(err)
		}
		inflated, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(inflated, plain) {
			t.Fatalf("%s gzip body inflates to different bytes", path)
		}
		if len(gzBody) >= len(plain) {
			t.Errorf("%s gzip body (%d) not smaller than identity (%d)", path, len(gzBody), len(plain))
		}
		// q=0 opts out.
		offResp, _ := fetch(path, "gzip;q=0")
		if enc := offResp.Header.Get("Content-Encoding"); enc != "" {
			t.Fatalf("%s with gzip;q=0 got Content-Encoding %q", path, enc)
		}
	}
}

// TestJournalSurvivesTornTail simulates a crash mid-append at the
// service level: chop the journal tail, reboot, and expect the state at
// the last complete record.
func TestJournalSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	ts, _, _ := newPersistentServer(t, dir)
	if code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatalf("assess: %d %s", code, body)
	}
	postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus: "c1", Changed: map[string]string{"m/a.c": "int fa(int x) { return 7; }\n"}}, nil)
	_, wantReport := getJSON(t, ts.URL+"/report?corpus=c1", nil)
	postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus: "c1", Changed: map[string]string{"m/a.c": "int fa(int x) { return 8; }\n"}}, nil)
	ts.Close() // crash without Close

	jpath := filepath.Join(dir, "c1", "journal")
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	ts2, svc2, restored := newPersistentServer(t, dir)
	defer svc2.Close()
	if len(restored) != 1 || !restored[0].Torn || restored[0].Replayed != 1 {
		t.Fatalf("torn restore = %+v, want torn with 1 replayed", restored)
	}
	_, gotReport := getJSON(t, ts2.URL+"/report?corpus=c1", nil)
	if gotReport != wantReport {
		t.Fatal("torn-tail restore does not match the state at the last complete record")
	}
}
