package service

// White-box regression tests for the concurrent read path: /report and
// /findings must serve under the corpus READ lock from the
// generation-keyed projection cache. A regression back to the write
// lock shows up here as a deadlock-timeout, not as a flaky timing
// assertion.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/srcfile"
)

func loadedState(t *testing.T) *corpusState {
	t.Helper()
	fs := srcfile.NewFileSet()
	fs.AddSource("m/a.c", "int ga;\nint fa(int x) { if (x > 0) { return 1; } return 0; }\n")
	fs.AddSource("n/b.c", "int fb(int x) { while (x > 0) { x--; } return x; }\n")
	a := core.NewAssessor(core.DefaultConfig())
	if err := a.LoadFileSet(fs); err != nil {
		t.Fatal(err)
	}
	return &corpusState{a: a}
}

// TestProjectionsServeUnderReadLock is the blocked-reader probe: a held
// read lock (a delta prepare in flight) must not block the report and
// findings projections — they take the read lock too. If either
// regresses to the write lock, the render never returns.
func TestProjectionsServeUnderReadLock(t *testing.T) {
	st := loadedState(t)
	st.mu.RLock()
	type rendered struct {
		r *ReportResponse
		f *FindingsResponse
	}
	done := make(chan rendered, 1)
	go func() {
		done <- rendered{st.renderedReport("c"), st.renderedFindings("c")}
	}()
	var first rendered
	select {
	case first = <-done:
	case <-time.After(10 * time.Second):
		st.mu.RUnlock()
		t.Fatal("projections blocked behind a held read lock: the read path takes the write lock")
	}
	st.mu.RUnlock()
	if first.r == nil || first.f == nil {
		t.Fatal("nil projection")
	}

	// Same generation: the cached responses are served as-is (pointer
	// identity), so a read burst renders once.
	if st.renderedReport("c") != first.r {
		t.Fatal("same-generation report was re-rendered: projection memoization broken")
	}
	if st.renderedFindings("c") != first.f {
		t.Fatal("same-generation findings were re-rendered: projection memoization broken")
	}

	// A commit advances the assessor generation and must invalidate both
	// projections — and the fresh render must reflect the edit.
	st.mu.Lock()
	_, err := st.a.ApplyDelta(core.Delta{Changed: []*srcfile.File{
		{Path: "m/a.c", Src: "int ga;\nint ga2;\nint fa(int x) { return x; }\n"},
	}})
	st.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	second := st.renderedReport("c")
	if second == first.r {
		t.Fatal("stale report projection served after a state-changing commit")
	}
	if st.renderedFindings("c") == first.f {
		t.Fatal("stale findings projection served after a state-changing commit")
	}
	if second.Summary.LOC == first.r.Summary.LOC {
		t.Fatalf("fresh report does not reflect the committed edit (LOC %d unchanged)", second.Summary.LOC)
	}
}

// TestNoOpDeltaKeepsProjection pins the generation contract from the
// serving side: an all-unchanged delta fires no hook, bumps no
// generation, and therefore keeps the cached projections valid.
func TestNoOpDeltaKeepsProjection(t *testing.T) {
	st := loadedState(t)
	first := st.renderedReport("c")
	st.mu.Lock()
	res, err := st.a.ApplyDelta(core.Delta{Changed: []*srcfile.File{
		{Path: "m/a.c", Src: "int ga;\nint fa(int x) { if (x > 0) { return 1; } return 0; }\n"},
	}})
	st.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if res.Unchanged != 1 || res.Parsed != 0 {
		t.Fatalf("delta result %+v, want a pure no-op", res)
	}
	if st.renderedReport("c") != first {
		t.Fatal("no-op delta invalidated the report projection")
	}
}
