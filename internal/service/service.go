// Package service is the serving front end of the assessor: a
// long-running HTTP JSON API holding warm core.Assessor state per
// corpus, so repeated assessments of nearly-identical corpora ride the
// incremental engine instead of re-parsing and re-indexing from
// scratch.
//
// Endpoints:
//
//	POST /assess — create or replace a named corpus (inline files, a
//	               server-side directory, or the generated default) and
//	               run a full assessment;
//	POST /delta  — apply a file-level edit to a loaded corpus and
//	               re-assess incrementally;
//	GET  /report — return the full report for a loaded corpus;
//	GET  /findings — return every individual finding for a loaded corpus
//	               (the differential harness byte-compares these rows
//	               against the in-process engines).
//
// Every response is JSON; errors are {"error": "..."} with a non-2xx
// status. Request bodies above MaxBody bytes are rejected with 413 and
// leave corpus state untouched. The server is safe for concurrent
// clients: distinct corpora proceed fully in parallel, and within one
// corpus the locking is shard-aware — a delta takes per-module locks
// plus a read lock for its expensive prepare phase (validation and
// parsing), so concurrent deltas to disjoint modules overlap instead of
// serializing end to end; only the cheap commit+re-assess runs under the
// corpus write lock. Deltas touching the same module serialize entirely,
// which pins a deterministic application order for conflicting edits.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/iso26262"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// DefaultMaxBody caps request bodies at 16 MiB: enough for a 10k-file
// generated corpus upload, small enough to bound a single request's
// memory.
const DefaultMaxBody = 16 << 20

// Server holds the warm per-corpus assessor states.
type Server struct {
	mu sync.Mutex
	// AllowDir, when true, lets POST /assess load server-side
	// directories via "dir" (off by default: the service should not
	// read arbitrary paths on behalf of remote clients).
	AllowDir bool
	// MaxBody caps request body size in bytes; 0 means DefaultMaxBody.
	MaxBody int64
	corpora map[string]*corpusState
}

type corpusState struct {
	// mu guards the assessor: read-held during delta prepares (which
	// only read the file set), write-held for commits, assessments, and
	// report builds (all of which mutate warm caches).
	mu sync.RWMutex
	a  *core.Assessor

	// shardMu guards the module-lock table; each module lock serializes
	// deltas touching that shard so conflicting edits apply in a
	// deterministic order while disjoint-module deltas overlap.
	shardMu    sync.Mutex
	shardLocks map[string]*sync.Mutex
}

// lockModules acquires the per-module locks for the given paths' modules
// in sorted order (deadlock-free) and returns the matching unlock. The
// module of a path is its leading segment — exactly how the corpus
// shards requests made through the service API.
func (st *corpusState) lockModules(paths []string) (unlock func()) {
	seen := make(map[string]bool)
	var mods []string
	for _, p := range paths {
		m := (&srcfile.File{Path: p}).ModuleName()
		if !seen[m] {
			seen[m] = true
			mods = append(mods, m)
		}
	}
	sort.Strings(mods)
	st.shardMu.Lock()
	if st.shardLocks == nil {
		st.shardLocks = make(map[string]*sync.Mutex)
	}
	locks := make([]*sync.Mutex, 0, len(mods))
	for _, m := range mods {
		l := st.shardLocks[m]
		if l == nil {
			l = &sync.Mutex{}
			st.shardLocks[m] = l
		}
		locks = append(locks, l)
	}
	st.shardMu.Unlock()
	for _, l := range locks {
		l.Lock()
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].Unlock()
		}
	}
}

// New creates an empty server.
func New() *Server {
	return &Server{corpora: make(map[string]*corpusState)}
}

// Handler returns the HTTP routing for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/assess", s.handleAssess)
	mux.HandleFunc("/delta", s.handleDelta)
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/findings", s.handleFindings)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// ---------------------------------------------------------------------------
// Requests and responses

// AssessRequest creates or replaces a corpus.
type AssessRequest struct {
	// Corpus names the assessor state; defaults to "default".
	Corpus string `json:"corpus"`
	// ASIL is the target integrity level ("QM", "A".."D"); default "D".
	ASIL string `json:"asil"`
	// Files maps corpus-relative paths to source content. When empty,
	// Generate or Dir must supply the corpus.
	Files map[string]string `json:"files"`
	// Generate loads the calibrated Apollo-like corpus (with Seed).
	Generate bool  `json:"generate"`
	Seed     int64 `json:"seed"`
	// Dir loads a server-side directory tree (requires Server.AllowDir).
	Dir string `json:"dir"`
}

// DeltaRequest edits a loaded corpus.
type DeltaRequest struct {
	Corpus string `json:"corpus"`
	// Changed maps paths to new content (add or replace).
	Changed map[string]string `json:"changed"`
	// Removed lists paths to delete.
	Removed []string `json:"removed"`
}

// Summary is the compact assessment result embedded in responses.
type Summary struct {
	Corpus    string         `json:"corpus"`
	Target    string         `json:"target_asil"`
	Files     int            `json:"files"`
	LOC       int            `json:"loc"`
	Functions int            `json:"functions"`
	Findings  int            `json:"findings"`
	Gaps      int            `json:"gaps"`
	ByRule    map[string]int `json:"findings_by_rule"`
}

// DeltaStats reports what the incremental engine actually redid.
type DeltaStats struct {
	Parsed              int `json:"parsed"`
	Unchanged           int `json:"unchanged"`
	Removed             int `json:"removed"`
	RuleFilesChecked    int `json:"rule_files_checked"`
	MetricFilesComputed int `json:"metric_files_computed"`
}

// AssessResponse answers POST /assess.
type AssessResponse struct {
	Summary Summary `json:"summary"`
}

// DeltaResponse answers POST /delta.
type DeltaResponse struct {
	Summary Summary    `json:"summary"`
	Delta   DeltaStats `json:"delta"`
}

// TopicRow is one verdict row of the report tables.
type TopicRow struct {
	Table      string `json:"table"`
	Item       int    `json:"item"`
	Name       string `json:"name"`
	Verdict    string `json:"verdict"`
	Violations int    `json:"violations"`
	Effort     string `json:"effort"`
	Evidence   string `json:"evidence"`
	Gap        bool   `json:"gap"`
}

// ObservationRow is one numbered observation.
type ObservationRow struct {
	Number   int    `json:"number"`
	Text     string `json:"text"`
	Evidence string `json:"evidence"`
}

// ModuleRow summarizes one module's metrics.
type ModuleRow struct {
	Name      string `json:"name"`
	Files     int    `json:"files"`
	LOC       int    `json:"loc"`
	NLOC      int    `json:"nloc"`
	Functions int    `json:"functions"`
	MaxCCN    int    `json:"max_ccn"`
}

// ReportResponse answers GET /report.
type ReportResponse struct {
	Summary      Summary          `json:"summary"`
	Coding       []TopicRow       `json:"coding"`
	Arch         []TopicRow       `json:"arch"`
	Unit         []TopicRow       `json:"unit"`
	Observations []ObservationRow `json:"observations"`
	Modules      []ModuleRow      `json:"modules"`
}

// FindingRow is one rule finding with every field the engine reports, so
// a client can reconstruct the finding stream byte-for-byte.
type FindingRow struct {
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	File     string   `json:"file"`
	Module   string   `json:"module"`
	Line     int      `json:"line"`
	Function string   `json:"function,omitempty"`
	Msg      string   `json:"msg"`
	Refs     []string `json:"refs,omitempty"`
}

// FindingsResponse answers GET /findings.
type FindingsResponse struct {
	Corpus   string       `json:"corpus"`
	Count    int          `json:"count"`
	Findings []FindingRow `json:"findings"`
}

// ---------------------------------------------------------------------------
// Handlers

// decodeBody decodes a JSON request body under the server's size cap,
// writing the error response itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	max := s.MaxBody
	if max <= 0 {
		max = DefaultMaxBody
	}
	r.Body = http.MaxBytesReader(w, r.Body, max)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AssessRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	name := req.Corpus
	if name == "" {
		name = "default"
	}
	asil := iso26262.ASILD
	if req.ASIL != "" {
		var err error
		if asil, err = iso26262.ParseASIL(req.ASIL); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	cfg := core.DefaultConfig()
	cfg.TargetASIL = asil
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	a := core.NewAssessor(cfg)
	switch {
	case len(req.Files) > 0:
		fs := srcfile.NewFileSet()
		for _, p := range sortedKeys(req.Files) {
			fs.AddSource(p, req.Files[p])
		}
		if err := a.LoadFileSet(fs); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
	case req.Dir != "":
		if !s.AllowDir {
			writeErr(w, http.StatusForbidden, "directory ingest is disabled on this server")
			return
		}
		if err := a.LoadDir(req.Dir); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
	case req.Generate:
		if err := a.LoadDefaultCorpus(); err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, "one of files, dir, or generate is required")
		return
	}

	st := &corpusState{a: a}
	st.mu.Lock()
	s.mu.Lock()
	s.corpora[name] = st
	s.mu.Unlock()
	as := a.Assess()
	resp := AssessResponse{Summary: summarize(name, a, as)}
	st.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DeltaRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	st, name, ok := s.corpus(req.Corpus)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("corpus %q not loaded", name))
		return
	}
	if len(req.Changed) == 0 && len(req.Removed) == 0 {
		writeErr(w, http.StatusBadRequest, "empty delta")
		return
	}
	d := core.Delta{Removed: req.Removed}
	touched := append([]string(nil), req.Removed...)
	for _, p := range sortedKeys(req.Changed) {
		d.Changed = append(d.Changed, &srcfile.File{Path: p, Src: req.Changed[p]})
		touched = append(touched, p)
	}

	// Shard-aware locking: hold the touched modules for the whole
	// request (conflicting deltas serialize in arrival order), but run
	// the expensive prepare phase under only a read lock so deltas to
	// disjoint modules validate and parse concurrently.
	unlock := st.lockModules(touched)
	defer unlock()

	st.mu.RLock()
	// A delta against a file the corpus does not hold is a client error;
	// reject it before any state changes (core.ApplyDelta would silently
	// ignore the removal).
	for _, p := range req.Removed {
		if st.a.FileSet().Lookup(p) == nil {
			st.mu.RUnlock()
			writeErr(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("removed path %q is not in corpus %q", p, name))
			return
		}
	}
	pd, err := st.a.PrepareDelta(d)
	st.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	res, err := st.a.CommitDelta(pd)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	as := st.a.Assess()
	writeJSON(w, http.StatusOK, DeltaResponse{
		Summary: summarize(name, st.a, as),
		Delta: DeltaStats{
			Parsed:              res.Parsed,
			Unchanged:           res.Unchanged,
			Removed:             res.Removed,
			RuleFilesChecked:    st.a.RuleFilesChecked(),
			MetricFilesComputed: st.a.MetricFilesComputed(),
		},
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st, name, ok := s.corpus(r.URL.Query().Get("corpus"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("corpus %q not loaded", name))
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	writeJSON(w, http.StatusOK, BuildReport(name, st.a))
}

// BuildReport assembles the full report payload for an assessor. Exported
// so the differential harness can byte-compare the HTTP path against a
// reference assessor through the exact same projection.
func BuildReport(name string, a *core.Assessor) ReportResponse {
	as := a.Assess()
	resp := ReportResponse{
		Summary:      summarize(name, a, as),
		Coding:       topicRows("coding", as.Coding, as.Target),
		Arch:         topicRows("arch", as.Arch, as.Target),
		Unit:         topicRows("unit", as.Unit, as.Target),
		Observations: make([]ObservationRow, 0, len(as.Observations)),
		Modules:      make([]ModuleRow, 0, len(a.Metrics().Modules)),
	}
	for _, o := range as.Observations {
		resp.Observations = append(resp.Observations, ObservationRow{o.Number, o.Text, o.Evidence})
	}
	for _, m := range a.Metrics().Modules {
		resp.Modules = append(resp.Modules, ModuleRow{m.Name, m.Files, m.LOC, m.NLOC, m.Functions, m.MaxCCN})
	}
	return resp
}

func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st, name, ok := s.corpus(r.URL.Query().Get("corpus"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("corpus %q not loaded", name))
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	rows := FindingRows(st.a.Findings())
	writeJSON(w, http.StatusOK, FindingsResponse{Corpus: name, Count: len(rows), Findings: rows})
}

// FindingRows projects engine findings onto the wire rows, preserving
// order and every field. The differential harness applies the same
// projection to in-process findings and compares canonical JSON bytes.
func FindingRows(fs []rules.Finding) []FindingRow {
	rows := make([]FindingRow, len(fs))
	for i, f := range fs {
		row := FindingRow{
			Rule:     f.RuleID,
			Severity: f.Severity.String(),
			File:     f.File,
			Module:   f.Module,
			Line:     f.Line,
			Function: f.Function,
			Msg:      f.Msg,
		}
		for _, ref := range f.Refs {
			row.Refs = append(row.Refs, ref.String())
		}
		rows[i] = row
	}
	return rows
}

// corpus resolves a (possibly empty) corpus name.
func (s *Server) corpus(name string) (*corpusState, string, bool) {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	st, ok := s.corpora[name]
	s.mu.Unlock()
	return st, name, ok
}

// ---------------------------------------------------------------------------
// Helpers

func summarize(name string, a *core.Assessor, as *core.Assessment) Summary {
	fw := a.Metrics()
	st := a.Stats()
	byRule := make(map[string]int, len(st.ByRule))
	for r, n := range st.ByRule {
		byRule[r] = n
	}
	return Summary{
		Corpus:    name,
		Target:    as.Target.String(),
		Files:     len(fw.Files),
		LOC:       fw.TotalLOC,
		Functions: fw.TotalFunc,
		Findings:  st.Total,
		Gaps:      len(as.Gaps()),
		ByRule:    byRule,
	}
}

func topicRows(table string, tas []iso26262.TopicAssessment, target iso26262.ASIL) []TopicRow {
	out := make([]TopicRow, 0, len(tas))
	for _, ta := range tas {
		out = append(out, TopicRow{
			Table:      table,
			Item:       ta.Topic.Item,
			Name:       ta.Topic.Name,
			Verdict:    ta.Verdict.String(),
			Violations: ta.Violations,
			Effort:     ta.Effort.String(),
			Evidence:   ta.Evidence,
			Gap:        ta.Gap(target),
		})
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
