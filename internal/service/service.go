// Package service is the serving front end of the assessor: a
// long-running HTTP JSON API holding warm core.Assessor state per
// corpus, so repeated assessments of nearly-identical corpora ride the
// incremental engine instead of re-parsing and re-indexing from
// scratch.
//
// Endpoints:
//
//	POST /assess — create or replace a named corpus (inline files, a
//	               server-side directory, or the generated default) and
//	               run a full assessment;
//	POST /delta  — apply a file-level edit to a loaded corpus and
//	               re-assess incrementally;
//	POST /snapshot — force a compaction: write a fresh snapshot and
//	               absorb the journal (persistent servers only);
//	GET  /report — return the full report for a loaded corpus;
//	GET  /findings — return every individual finding for a loaded corpus
//	               (the differential harness byte-compares these rows
//	               against the in-process engines).
//
// A server opened over a data directory (NewWithStore) is persistent:
// every corpus is restored on boot from its snapshot plus delta-journal
// replay (a torn journal tail — the crash-mid-append signature — is
// dropped), every /delta is journaled and made durable before it is
// acknowledged — concurrent deltas group-commit, coalescing their
// journal fsyncs onto a shared one issued outside the corpus lock — the
// journal is compacted into a fresh snapshot when it outgrows its
// thresholds, and Close drains state back to disk and writes a
// clean-shutdown marker so the next boot replays nothing.
// /report and /findings additionally honor Accept-Encoding: gzip —
// their multi-megabyte bodies compress roughly 20x on large corpora.
//
// Every response is JSON; errors are {"error": "..."} with a non-2xx
// status. Request bodies above MaxBody bytes are rejected with 413 and
// leave corpus state untouched. The server is safe for concurrent
// clients: distinct corpora proceed fully in parallel, and within one
// corpus the locking is shard-aware — a delta takes per-module locks
// plus a read lock for its expensive prepare phase (validation and
// parsing), so concurrent deltas to disjoint modules overlap instead of
// serializing end to end; only the cheap commit+re-assess runs under the
// corpus write lock. Deltas touching the same module serialize entirely,
// which pins a deterministic application order for conflicting edits.
package service

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iso26262"
	"repro/internal/rules"
	"repro/internal/srcfile"
	"repro/internal/store"
)

// DefaultMaxBody caps request bodies at 16 MiB: enough for a 10k-file
// generated corpus upload, small enough to bound a single request's
// memory.
const DefaultMaxBody = 16 << 20

// Server holds the warm per-corpus assessor states.
type Server struct {
	// mu guards the corpus table: read-held for the name lookup every
	// request starts with, write-held only when /assess installs or
	// reinstates a corpus and when Close drains. Reads of distinct (or
	// the same) corpora never contend here.
	mu sync.RWMutex
	// AllowDir, when true, lets POST /assess load server-side
	// directories via "dir" (off by default: the service should not
	// read arbitrary paths on behalf of remote clients).
	AllowDir bool
	// MaxBody caps request body size in bytes; 0 means DefaultMaxBody.
	MaxBody int64
	corpora map[string]*corpusState
	// dataDir, when non-nil, makes the server persistent (see the
	// package comment); nil servers are purely in-memory.
	dataDir *store.Dir

	// TraceLog, when non-nil, receives one JSON line per request whose
	// total latency reaches TraceThreshold (0 logs every request) —
	// endpoint, status, total, and the span's phase breakdown. Both are
	// configured before serving starts and never mutated after; traceMu
	// serializes writers so concurrent lines never interleave.
	TraceLog       io.Writer
	TraceThreshold time.Duration
	traceMu        sync.Mutex

	// obs is the per-Server metrics registry (see obs.go); always
	// non-nil on servers built via New/NewWithStore.
	obs *serverMetrics
}

type corpusState struct {
	// mu guards the assessor: read-held during delta prepares (which
	// only read the file set) and rendered-projection serves, write-held
	// for commits and the assessments they trigger. Renderers do mutate
	// warm caches under the read lock, but only the memoized
	// whole-corpus fields and per-shard caches — fields no other
	// RLock-holding path touches (prepares read only the file set and
	// the interner, which is internally striped) — and projMu serializes
	// the renderers against each other.
	mu sync.RWMutex
	a  *core.Assessor
	// cs is the corpus's persistent store (nil on in-memory servers).
	// It is touched only under mu's write lock: the journal stage runs
	// inside CommitDelta via the assessor's commit hook, compaction and
	// snapshots run after commits, and Close drains under the lock. The
	// one exception is the sync barrier a delta captures under the lock
	// and invokes after release — the group-commit fsync (Journal is
	// internally locked for exactly this).
	cs *store.CorpusStore

	// shardMu guards the module-lock table; each module lock serializes
	// deltas touching that shard so conflicting edits apply in a
	// deterministic order while disjoint-module deltas overlap.
	shardMu    sync.Mutex
	shardLocks map[string]*sync.Mutex

	// projMu guards the rendered-projection cache below. It nests inside
	// mu — renderers hold st.mu.RLock, then projMu — and serializes the
	// (expensive) render so a burst of reads after one delta renders
	// once and the rest serve the cached value. The cached responses are
	// immutable once published (invalidation replaces, never mutates),
	// so handlers may encode them after releasing every lock.
	projMu sync.Mutex
	// projGen is the assessor generation projReport/projFindings were
	// rendered at; a Gen() advance invalidates both.
	projGen      uint64
	projReport   *ReportResponse
	projFindings *FindingsResponse
}

// lockModules acquires the per-module locks for the given paths' modules
// in sorted order (deadlock-free) and returns the matching unlock. The
// module of a path is its leading segment — exactly how the corpus
// shards requests made through the service API.
func (st *corpusState) lockModules(paths []string) (unlock func()) {
	seen := make(map[string]bool)
	var mods []string
	for _, p := range paths {
		m := (&srcfile.File{Path: p}).ModuleName()
		if !seen[m] {
			seen[m] = true
			mods = append(mods, m)
		}
	}
	sort.Strings(mods)
	st.shardMu.Lock()
	if st.shardLocks == nil {
		st.shardLocks = make(map[string]*sync.Mutex)
	}
	locks := make([]*sync.Mutex, 0, len(mods))
	for _, m := range mods {
		l := st.shardLocks[m]
		if l == nil {
			l = &sync.Mutex{}
			st.shardLocks[m] = l
		}
		locks = append(locks, l)
	}
	st.shardMu.Unlock()
	for _, l := range locks {
		l.Lock()
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].Unlock()
		}
	}
}

// New creates an empty in-memory server.
func New() *Server {
	return &Server{
		corpora: make(map[string]*corpusState),
		obs:     newServerMetrics(),
	}
}

// RestoredCorpus describes one corpus recovered during NewWithStore.
type RestoredCorpus struct {
	Name string
	// Files is the restored corpus size.
	Files int
	// Replayed journal records applied on top of the snapshot.
	Replayed int
	// Torn reports that a torn journal tail was dropped.
	Torn bool
	// Clean reports the previous process shut down cleanly (marker
	// present, nothing to replay).
	Clean bool
}

// NewWithStore creates a persistent server over a data directory,
// restoring every stored corpus (snapshot + journal replay, torn tails
// tolerated) and journaling every subsequent delta before it is
// acknowledged. The returned list describes what was recovered.
func NewWithStore(d *store.Dir) (*Server, []RestoredCorpus, error) {
	s := New()
	s.dataDir = d
	names, err := d.Corpora()
	if err != nil {
		return nil, nil, err
	}
	restored := make([]RestoredCorpus, 0, len(names))
	for _, name := range names {
		cs, err := d.Corpus(name)
		if err != nil {
			return nil, nil, err
		}
		cs.SetMetrics(s.obs.journal)
		a, info, err := cs.Recover(core.DefaultConfig())
		if err != nil {
			return nil, nil, fmt.Errorf("restore corpus %q: %w", name, err)
		}
		a.SetCommitHook(cs.Stage)
		s.corpora[name] = &corpusState{a: a, cs: cs}
		restored = append(restored, RestoredCorpus{
			Name:     name,
			Files:    a.FileSet().Len(),
			Replayed: info.Replayed,
			Torn:     info.Torn,
			Clean:    info.Clean,
		})
	}
	return s, restored, nil
}

// Close drains a persistent server back to disk: every corpus is
// compacted into a fresh snapshot (absorbing its journal), the journal
// is synced and closed, and a clean-shutdown marker is written so the
// next boot replays nothing. In-memory servers close trivially.
// Callers stop accepting requests (http.Server.Shutdown) first.
func (s *Server) Close() error {
	s.mu.Lock()
	names := make([]string, 0, len(s.corpora))
	for name := range s.corpora {
		names = append(names, name)
	}
	sort.Strings(names)
	states := make([]*corpusState, 0, len(names))
	for _, name := range names {
		states = append(states, s.corpora[name])
	}
	s.mu.Unlock()
	var firstErr error
	for _, st := range states {
		st.mu.Lock()
		if st.cs != nil {
			if _, err := st.persist(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := st.cs.MarkClean(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := st.cs.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			st.cs = nil
			st.a.SetCommitHook(nil)
		}
		st.mu.Unlock()
	}
	return firstErr
}

// persist writes the corpus's current state as a snapshot, absorbing
// the journal, and returns the encoded size. Callers hold the write
// lock.
func (st *corpusState) persist() (int64, error) {
	snap, err := st.a.ExportState()
	if err != nil {
		return 0, err
	}
	return st.cs.WriteSnapshot(snap)
}

// Handler returns the HTTP routing for the service. Every route runs
// under the instrument middleware (request counts, latency, spans,
// slow-request tracing).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/assess", s.instrument("/assess", s.handleAssess))
	mux.HandleFunc("/delta", s.instrument("/delta", s.handleDelta))
	mux.HandleFunc("/snapshot", s.instrument("/snapshot", s.handleSnapshot))
	mux.HandleFunc("/report", s.instrument("/report", s.handleReport))
	mux.HandleFunc("/findings", s.instrument("/findings", s.handleFindings))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("/statz", s.instrument("/statz", s.handleStatz))
	mux.HandleFunc("/healthz", s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	return mux
}

// ---------------------------------------------------------------------------
// Requests and responses

// AssessRequest creates or replaces a corpus.
type AssessRequest struct {
	// Corpus names the assessor state; defaults to "default".
	Corpus string `json:"corpus"`
	// ASIL is the target integrity level ("QM", "A".."D"); default "D".
	ASIL string `json:"asil"`
	// Files maps corpus-relative paths to source content. When empty,
	// Generate or Dir must supply the corpus.
	Files map[string]string `json:"files"`
	// Generate loads the calibrated Apollo-like corpus (with Seed).
	Generate bool  `json:"generate"`
	Seed     int64 `json:"seed"`
	// Dir loads a server-side directory tree (requires Server.AllowDir).
	Dir string `json:"dir"`
}

// DeltaRequest edits a loaded corpus. A multi-file request is a
// *batch*: every change and removal commits atomically as one delta —
// one journal record (one fsync under group commit), one index update,
// one generation advance — with per-commit costs amortized across the
// batch. A path in both Changed and Removed is removed first, then
// re-added fresh (core.PrepareDelta's ordering rule). CI-bot workloads
// should ship one request per commit, not one per file; adload's
// -batch flag measures the amortization.
type DeltaRequest struct {
	Corpus string `json:"corpus"`
	// Changed maps paths to new content (add or replace).
	Changed map[string]string `json:"changed"`
	// Removed lists paths to delete.
	Removed []string `json:"removed"`
}

// Summary is the compact assessment result embedded in responses.
type Summary struct {
	Corpus    string         `json:"corpus"`
	Target    string         `json:"target_asil"`
	Files     int            `json:"files"`
	LOC       int            `json:"loc"`
	Functions int            `json:"functions"`
	Findings  int            `json:"findings"`
	Gaps      int            `json:"gaps"`
	ByRule    map[string]int `json:"findings_by_rule"`
}

// DeltaStats reports what the incremental engine actually redid.
type DeltaStats struct {
	Parsed              int `json:"parsed"`
	Unchanged           int `json:"unchanged"`
	Removed             int `json:"removed"`
	RuleFilesChecked    int `json:"rule_files_checked"`
	MetricFilesComputed int `json:"metric_files_computed"`
}

// AssessResponse answers POST /assess.
type AssessResponse struct {
	Summary Summary `json:"summary"`
}

// JournalStats reports the persistence state after a delta on a
// persistent server.
type JournalStats struct {
	// Records and Bytes describe the journal after the delta (and after
	// any compaction it triggered).
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Fsyncs is the cumulative record-durability fsync count of the
	// corpus's journal (monotonic across compactions). A load harness
	// divides it by the deltas it issued to measure group-commit
	// amortization.
	Fsyncs int64 `json:"fsyncs"`
	// Compacted reports that this delta tripped a compaction: the
	// journal was absorbed into a fresh snapshot.
	Compacted bool `json:"compacted"`
}

// DeltaResponse answers POST /delta.
type DeltaResponse struct {
	Summary Summary    `json:"summary"`
	Delta   DeltaStats `json:"delta"`
	// Journal is present on persistent servers only.
	Journal *JournalStats `json:"journal,omitempty"`
}

// SnapshotRequest asks for a forced compaction.
type SnapshotRequest struct {
	Corpus string `json:"corpus"`
}

// SnapshotResponse answers POST /snapshot.
type SnapshotResponse struct {
	Corpus        string `json:"corpus"`
	Files         int    `json:"files"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
}

// TopicRow is one verdict row of the report tables.
type TopicRow struct {
	Table      string `json:"table"`
	Item       int    `json:"item"`
	Name       string `json:"name"`
	Verdict    string `json:"verdict"`
	Violations int    `json:"violations"`
	Effort     string `json:"effort"`
	Evidence   string `json:"evidence"`
	Gap        bool   `json:"gap"`
}

// ObservationRow is one numbered observation.
type ObservationRow struct {
	Number   int    `json:"number"`
	Text     string `json:"text"`
	Evidence string `json:"evidence"`
}

// ModuleRow summarizes one module's metrics.
type ModuleRow struct {
	Name      string `json:"name"`
	Files     int    `json:"files"`
	LOC       int    `json:"loc"`
	NLOC      int    `json:"nloc"`
	Functions int    `json:"functions"`
	MaxCCN    int    `json:"max_ccn"`
}

// ReportResponse answers GET /report.
type ReportResponse struct {
	Summary      Summary          `json:"summary"`
	Coding       []TopicRow       `json:"coding"`
	Arch         []TopicRow       `json:"arch"`
	Unit         []TopicRow       `json:"unit"`
	Observations []ObservationRow `json:"observations"`
	Modules      []ModuleRow      `json:"modules"`
}

// FindingRow is one rule finding with every field the engine reports, so
// a client can reconstruct the finding stream byte-for-byte.
type FindingRow struct {
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	File     string   `json:"file"`
	Module   string   `json:"module"`
	Line     int      `json:"line"`
	Function string   `json:"function,omitempty"`
	Msg      string   `json:"msg"`
	Refs     []string `json:"refs,omitempty"`
}

// FindingsResponse answers GET /findings.
type FindingsResponse struct {
	Corpus   string       `json:"corpus"`
	Count    int          `json:"count"`
	Findings []FindingRow `json:"findings"`
}

// ---------------------------------------------------------------------------
// Handlers

// decodeBody decodes a JSON request body under the server's size cap,
// writing the error response itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	max := s.MaxBody
	if max <= 0 {
		max = DefaultMaxBody
	}
	r.Body = http.MaxBytesReader(w, r.Body, max)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AssessRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	name := req.Corpus
	if name == "" {
		name = "default"
	}
	if s.dataDir != nil && !store.ValidCorpusName(name) {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("corpus name %q is not storable on a persistent server (letters, digits, '._-', no leading dot, max 64)", name))
		return
	}
	asil := iso26262.ASILD
	if req.ASIL != "" {
		var err error
		if asil, err = iso26262.ParseASIL(req.ASIL); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	cfg := core.DefaultConfig()
	cfg.TargetASIL = asil
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	a := core.NewAssessor(cfg)
	switch {
	case len(req.Files) > 0:
		fs := srcfile.NewFileSet()
		for _, p := range sortedKeys(req.Files) {
			fs.AddSource(p, req.Files[p])
		}
		if err := a.LoadFileSet(fs); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
	case req.Dir != "":
		if !s.AllowDir {
			writeErr(w, http.StatusForbidden, "directory ingest is disabled on this server")
			return
		}
		if err := a.LoadDir(req.Dir); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
	case req.Generate:
		if err := a.LoadDefaultCorpus(); err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, "one of files, dir, or generate is required")
		return
	}

	st := &corpusState{a: a}
	st.mu.Lock()
	s.mu.Lock()
	old := s.corpora[name]
	s.corpora[name] = st
	s.mu.Unlock()

	// A replaced corpus must quiesce before the fresh state takes over
	// the on-disk directory: taking the old write lock waits out
	// in-flight commits (whose journal appends the new snapshot below
	// then discards — they carry the superseded generation either way),
	// and clearing the hook stops any later ones. The old store HANDLE
	// stays open until the new snapshot is installed, so a persistence
	// failure can hand the corpus back fully functional.
	var oldCS *store.CorpusStore
	if old != nil {
		//adlint:ignore lockorder rank-equal corpus locks: always (successor, predecessor) during replacement; a predecessor never locks its successor, so the chain is acyclic
		old.mu.Lock()
		oldCS, old.cs = old.cs, nil
		old.a.SetCommitHook(nil)
		old.mu.Unlock()
	}

	as := a.Assess()
	// Persistent servers write the initial snapshot before the corpus
	// is acknowledged: an /assess that returns 200 survives a crash.
	if s.dataDir != nil {
		cs, err := s.dataDir.Corpus(name)
		if err == nil {
			cs.SetMetrics(s.obs.journal)
			st.cs = cs
			_, err = st.persist()
		}
		if err != nil {
			// Persistence failed: a 500 must not leave the name serving
			// nothing. Reinstate the replaced corpus — its on-disk
			// snapshot+journal are still the source of truth (an error
			// means the new snapshot never renamed into place) — with
			// its original, still-open store so later deltas keep
			// journaling under the correct generation.
			s.mu.Lock()
			if s.corpora[name] == st {
				if old != nil {
					s.corpora[name] = old
				} else {
					delete(s.corpora, name)
				}
			}
			s.mu.Unlock()
			if old != nil && oldCS != nil {
				//adlint:ignore lockorder rank-equal corpus locks: same (successor, predecessor) replacement order as above, reinstating the superseded state
				old.mu.Lock()
				old.cs = oldCS
				old.a.SetCommitHook(oldCS.Stage)
				old.mu.Unlock()
			}
			st.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, "persist corpus: "+err.Error())
			return
		}
		a.SetCommitHook(cs.Stage)
	}
	resp := AssessResponse{Summary: summarize(name, a, as)}
	st.mu.Unlock()
	if oldCS != nil {
		// The replacement is durable; release the superseded handle. A
		// close error on it is unactionable — its snapshot+journal are
		// no longer the source of truth.
		_ = oldCS.Close()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DeltaRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	st, name, ok := s.corpus(req.Corpus)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("corpus %q not loaded", name))
		return
	}
	if len(req.Changed) == 0 && len(req.Removed) == 0 {
		writeErr(w, http.StatusBadRequest, "empty delta")
		return
	}
	d := core.Delta{Removed: req.Removed}
	touched := append([]string(nil), req.Removed...)
	for _, p := range sortedKeys(req.Changed) {
		d.Changed = append(d.Changed, &srcfile.File{Path: p, Src: req.Changed[p]})
		touched = append(touched, p)
	}

	sp := spanFrom(r.Context())
	sp.Note("corpus", name)

	// Shard-aware locking: hold the touched modules for the whole
	// request (conflicting deltas serialize in arrival order), but run
	// the expensive prepare phase under only a read lock so deltas to
	// disjoint modules validate and parse concurrently.
	unlock := st.lockModules(touched)
	defer unlock()

	// Phase timings are disjoint sub-intervals of the request (the
	// breakdown sums to at most the middleware's total). "prepare"
	// covers validation plus the parallel parse under the read lock,
	// "commit" the in-memory index update (hook time subtracted out as
	// "journal_stage"), "assess" the re-assessment, "sync_barrier" the
	// group-commit fsync wait after the lock is released.
	tPrepare := time.Now()
	st.mu.RLock()
	// A delta against a file the corpus does not hold is a client error;
	// reject it before any state changes (core.ApplyDelta would silently
	// ignore the removal).
	for _, p := range req.Removed {
		if st.a.FileSet().Lookup(p) == nil {
			st.mu.RUnlock()
			writeErr(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("removed path %q is not in corpus %q", p, name))
			return
		}
	}
	pd, err := st.a.PrepareDelta(d)
	st.mu.RUnlock()
	sp.Observe("prepare", time.Since(tPrepare).Nanoseconds())
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	st.mu.Lock()
	tCommit := time.Now()
	// On a persistent server the commit hook stages the journal record
	// inside CommitDelta before any state mutates (commit order = journal
	// order, so every later fsync covers a prefix of committed deltas); a
	// staging failure surfaces as a commit error with the corpus
	// untouched. Durability comes from the sync barrier below, after the
	// write lock is released, so concurrent deltas group-commit onto a
	// shared fsync — but always before the 200: an acknowledged delta is
	// on disk.
	res, err := st.a.CommitDelta(pd)
	if err != nil {
		st.mu.Unlock()
		// A journal failure is a server-side durability fault (retry
		// later), not an invalid request.
		status := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrCommitHook) {
			status = http.StatusInternalServerError
		}
		writeErr(w, status, err.Error())
		return
	}
	sp.Observe("journal_stage", res.HookNs)
	sp.Observe("commit", time.Since(tCommit).Nanoseconds()-res.HookNs)
	s.obs.dirtyShards.Observe(int64(res.DirtyShards))
	if res.ParWidth > 0 {
		s.obs.parWidth.Set(int64(res.ParWidth))
	}
	tAssess := time.Now()
	as := st.a.Assess()
	sp.Observe("assess", time.Since(tAssess).Nanoseconds())
	resp := DeltaResponse{
		Summary: summarize(name, st.a, as),
		Delta: DeltaStats{
			Parsed:              res.Parsed,
			Unchanged:           res.Unchanged,
			Removed:             res.Removed,
			RuleFilesChecked:    st.a.RuleFilesChecked(),
			MetricFilesComputed: st.a.MetricFilesComputed(),
		},
	}
	var syncJournal func() (int64, error)
	if st.cs != nil {
		js := &JournalStats{}
		if st.cs.ShouldCompact() {
			// Compaction failure is not a delta failure: the record is
			// staged (and absorbed or fsync'd below) either way, and the
			// next delta retries the compaction.
			_, perr := st.persist()
			js.Compacted = perr == nil
		}
		js.Records, js.Bytes = st.cs.JournalRecords(), st.cs.JournalBytes()
		resp.Journal = js
		// Capture the barrier under the lock so it covers exactly the
		// staged prefix ending at this commit (a compaction just above
		// makes it a no-op: the snapshot absorbed the record).
		syncJournal = st.cs.SyncBarrier()
	}
	st.mu.Unlock()
	if syncJournal != nil {
		tSync := time.Now()
		n, err := syncJournal()
		sp.Observe("sync_barrier", time.Since(tSync).Nanoseconds())
		if err != nil {
			// The commit is in memory but its durability is unknown: a
			// distinct server-side fault — the client must not assume
			// the delta survives a crash.
			writeErr(w, http.StatusInternalServerError, "journal sync: "+err.Error())
			return
		}
		resp.Journal.Fsyncs = n
	}
	// Counted before the response hits the wire: once a client observes
	// the 200, the ack is already in /statz (the load harness diffs the
	// two).
	s.obs.deltasAcked.Inc()
	s.obs.deltaFilesAcked.Add(int64(len(req.Changed) + len(req.Removed)))
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot forces a compaction: the corpus's current state is
// written as a fresh snapshot and the journal is absorbed into it.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req SnapshotRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if s.dataDir == nil {
		writeErr(w, http.StatusBadRequest, "server has no data directory (-data-dir)")
		return
	}
	st, name, ok := s.corpus(req.Corpus)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("corpus %q not loaded", name))
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cs == nil {
		writeErr(w, http.StatusConflict, fmt.Sprintf("corpus %q is no longer backed by the store", name))
		return
	}
	n, err := st.persist()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Corpus:        name,
		Files:         st.a.FileSet().Len(),
		SnapshotBytes: n,
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st, name, ok := s.corpus(r.URL.Query().Get("corpus"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("corpus %q not loaded", name))
		return
	}
	endRender := spanFrom(r.Context()).Phase("render")
	resp := st.renderedReport(name)
	endRender()
	writeJSONNegotiated(w, r, http.StatusOK, resp)
}

// renderedReport serves the corpus's report projection, rendering it at
// most once per assessor generation: concurrent reads share the cached
// response under the corpus read lock, so they neither block each other
// nor pay repeated renders, and a write (delta commit) waits only for
// the render in flight, not for a queue of them.
func (st *corpusState) renderedReport(name string) *ReportResponse {
	st.mu.RLock()
	defer st.mu.RUnlock()
	gen := st.a.Gen()
	st.projMu.Lock()
	defer st.projMu.Unlock()
	st.invalidateProjLocked(gen)
	if st.projReport == nil {
		r := BuildReport(name, st.a)
		st.projReport = &r
	}
	return st.projReport
}

// renderedFindings is renderedReport for the findings projection.
func (st *corpusState) renderedFindings(name string) *FindingsResponse {
	st.mu.RLock()
	defer st.mu.RUnlock()
	gen := st.a.Gen()
	st.projMu.Lock()
	defer st.projMu.Unlock()
	st.invalidateProjLocked(gen)
	if st.projFindings == nil {
		rows := FindingRows(st.a.Findings())
		st.projFindings = &FindingsResponse{Corpus: name, Count: len(rows), Findings: rows}
	}
	return st.projFindings
}

// invalidateProjLocked drops cached projections rendered at a different
// generation. Callers hold projMu (and st.mu at least read-locked, so
// gen is current).
func (st *corpusState) invalidateProjLocked(gen uint64) {
	if st.projGen != gen {
		st.projGen = gen
		st.projReport = nil
		st.projFindings = nil
	}
}

// BuildReport assembles the full report payload for an assessor. Exported
// so the differential harness can byte-compare the HTTP path against a
// reference assessor through the exact same projection.
func BuildReport(name string, a *core.Assessor) ReportResponse {
	as := a.Assess()
	resp := ReportResponse{
		Summary:      summarize(name, a, as),
		Coding:       topicRows("coding", as.Coding, as.Target),
		Arch:         topicRows("arch", as.Arch, as.Target),
		Unit:         topicRows("unit", as.Unit, as.Target),
		Observations: make([]ObservationRow, 0, len(as.Observations)),
		Modules:      make([]ModuleRow, 0, len(a.Metrics().Modules)),
	}
	for _, o := range as.Observations {
		resp.Observations = append(resp.Observations, ObservationRow{o.Number, o.Text, o.Evidence})
	}
	for _, m := range a.Metrics().Modules {
		resp.Modules = append(resp.Modules, ModuleRow{m.Name, m.Files, m.LOC, m.NLOC, m.Functions, m.MaxCCN})
	}
	return resp
}

func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st, name, ok := s.corpus(r.URL.Query().Get("corpus"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("corpus %q not loaded", name))
		return
	}
	endRender := spanFrom(r.Context()).Phase("render")
	resp := st.renderedFindings(name)
	endRender()
	writeJSONNegotiated(w, r, http.StatusOK, resp)
}

// FindingRows projects engine findings onto the wire rows, preserving
// order and every field. The differential harness applies the same
// projection to in-process findings and compares canonical JSON bytes.
func FindingRows(fs []rules.Finding) []FindingRow {
	rows := make([]FindingRow, len(fs))
	for i, f := range fs {
		row := FindingRow{
			Rule:     f.RuleID,
			Severity: f.Severity.String(),
			File:     f.File,
			Module:   f.Module,
			Line:     f.Line,
			Function: f.Function,
			Msg:      f.Msg,
		}
		for _, ref := range f.Refs {
			row.Refs = append(row.Refs, ref.String())
		}
		rows[i] = row
	}
	return rows
}

// corpus resolves a (possibly empty) corpus name.
func (s *Server) corpus(name string) (*corpusState, string, bool) {
	if name == "" {
		name = "default"
	}
	s.mu.RLock()
	st, ok := s.corpora[name]
	s.mu.RUnlock()
	return st, name, ok
}

// ---------------------------------------------------------------------------
// Helpers

func summarize(name string, a *core.Assessor, as *core.Assessment) Summary {
	fw := a.Metrics()
	st := a.Stats()
	byRule := make(map[string]int, len(st.ByRule))
	for r, n := range st.ByRule {
		byRule[r] = n
	}
	return Summary{
		Corpus:    name,
		Target:    as.Target.String(),
		Files:     len(fw.Files),
		LOC:       fw.TotalLOC,
		Functions: fw.TotalFunc,
		Findings:  st.Total,
		Gaps:      len(as.Gaps()),
		ByRule:    byRule,
	}
}

func topicRows(table string, tas []iso26262.TopicAssessment, target iso26262.ASIL) []TopicRow {
	out := make([]TopicRow, 0, len(tas))
	for _, ta := range tas {
		out = append(out, TopicRow{
			Table:      table,
			Item:       ta.Topic.Item,
			Name:       ta.Topic.Name,
			Verdict:    ta.Verdict.String(),
			Violations: ta.Violations,
			Effort:     ta.Effort.String(),
			Evidence:   ta.Evidence,
			Gap:        ta.Gap(target),
		})
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	abortOnEncodeErr(json.NewEncoder(w).Encode(v))
}

// abortOnEncodeErr handles a mid-body encode failure. The status line
// is already on the wire, so the response cannot be turned into an
// error — but it must not be left looking like a success either: the
// handler panics to kill the connection, so the client sees a truncated
// transfer instead of a complete-looking 200 with a silently truncated
// body. A value the encoder cannot marshal is a server bug and panics
// loudly (net/http logs the stack); a write failure means the client is
// gone and aborts quietly via http.ErrAbortHandler.
func abortOnEncodeErr(err error) {
	if err == nil {
		return
	}
	var ute *json.UnsupportedTypeError
	var uve *json.UnsupportedValueError
	var me *json.MarshalerError
	if errors.As(err, &ute) || errors.As(err, &uve) || errors.As(err, &me) {
		panic(fmt.Sprintf("service: response failed to encode: %v", err))
	}
	panic(http.ErrAbortHandler)
}

// writeJSONNegotiated is writeJSON plus gzip content negotiation, used
// by the bulk read endpoints (/report, /findings) whose bodies reach
// multiple megabytes on large corpora and compress roughly 20x.
func writeJSONNegotiated(w http.ResponseWriter, r *http.Request, status int, v interface{}) {
	// The response varies on Accept-Encoding whichever variant is
	// chosen; caches must see Vary on the identity branch too. The
	// projections change on every delta commit, so intermediaries must
	// not serve a stale body: no-store, never cache.
	w.Header().Add("Vary", "Accept-Encoding")
	w.Header().Set("Cache-Control", "no-store")
	if !acceptsGzip(r) {
		writeJSON(w, status, v)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Encoding", "gzip")
	w.WriteHeader(status)
	gz := gzip.NewWriter(w)
	abortOnEncodeErr(json.NewEncoder(gz).Encode(v))
	// A Close failure is a flush that never reached the client: without
	// the trailing gzip frame the body is undecodable, so abort rather
	// than leave a 200 with a corrupt payload.
	abortOnEncodeErr(gz.Close())
}

// acceptsGzip reports whether the client's Accept-Encoding admits gzip
// (a q=0 disables it; any other listing, or a bare *, enables it).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		if enc = strings.TrimSpace(enc); enc != "gzip" && enc != "*" {
			continue
		}
		if hasQ {
			if qv, ok := strings.CutPrefix(strings.TrimSpace(q), "q="); ok {
				if f, err := strconv.ParseFloat(qv, 64); err == nil && f == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
