package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/service"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
	ts := httptest.NewServer(service.New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, buf.String())
		}
	}
	return resp.StatusCode, buf.String()
}

func getJSON(t *testing.T, url string, out interface{}) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, buf.String())
		}
	}
	return resp.StatusCode, buf.String()
}

// smallCorpus is a deterministic inline corpus for API tests.
func smallCorpus() map[string]string {
	return map[string]string{
		"m/a.c": "int ga;\nint fa(int x) { if (x > 0) { return 1; } return 0; }\n",
		"m/b.c": "int fb(int x) { while (x > 0) { x--; } return x; }\n",
		"n/c.c": "void fc(void) { fb(3); }\n",
	}
}

func TestAssessDeltaReportRoundTrip(t *testing.T) {
	ts := newTestServer(t)

	var ar service.AssessResponse
	code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c1", Files: smallCorpus()}, &ar)
	if code != http.StatusOK {
		t.Fatalf("/assess = %d: %s", code, body)
	}
	if ar.Summary.Files != 3 || ar.Summary.Functions != 3 {
		t.Fatalf("summary = %+v", ar.Summary)
	}
	if ar.Summary.ByRule["global-var"] != 1 {
		t.Errorf("global-var findings = %d, want 1", ar.Summary.ByRule["global-var"])
	}

	// Delta: edit one file; the engine should re-check only it (the edit
	// keeps signatures and globals stable).
	var dr service.DeltaResponse
	code, body = postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus: "c1",
		Changed: map[string]string{
			"m/b.c": "int fb(int x) { do { x--; } while (x > 0); goto done;\ndone:\n  return x; }\n",
		},
	}, &dr)
	if code != http.StatusOK {
		t.Fatalf("/delta = %d: %s", code, body)
	}
	if dr.Delta.Parsed != 1 || dr.Delta.RuleFilesChecked != 1 || dr.Delta.MetricFilesComputed != 1 {
		t.Fatalf("delta stats = %+v, want 1/1/1", dr.Delta)
	}
	if dr.Summary.ByRule["goto"] != 1 {
		t.Errorf("goto findings after delta = %d, want 1", dr.Summary.ByRule["goto"])
	}

	// Report reflects the delta.
	var rr service.ReportResponse
	code, body = getJSON(t, ts.URL+"/report?corpus=c1", &rr)
	if code != http.StatusOK {
		t.Fatalf("/report = %d: %s", code, body)
	}
	if len(rr.Coding) != 8 || len(rr.Arch) != 7 || len(rr.Unit) != 10 {
		t.Fatalf("report tables = %d/%d/%d", len(rr.Coding), len(rr.Arch), len(rr.Unit))
	}
	if len(rr.Observations) != 14 {
		t.Fatalf("observations = %d", len(rr.Observations))
	}
	if rr.Summary.Findings != dr.Summary.Findings {
		t.Errorf("report summary drifted from delta summary")
	}

	// Removal delta.
	code, body = postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus:  "c1",
		Removed: []string{"n/c.c"},
	}, &dr)
	if code != http.StatusOK {
		t.Fatalf("/delta remove = %d: %s", code, body)
	}
	if dr.Summary.Files != 2 || dr.Delta.Removed != 1 {
		t.Fatalf("after removal: %+v", dr)
	}
}

func TestServiceErrors(t *testing.T) {
	ts := newTestServer(t)

	// Unknown corpus.
	if code, _ := getJSON(t, ts.URL+"/report?corpus=nope", nil); code != http.StatusNotFound {
		t.Errorf("report unknown corpus = %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/delta",
		service.DeltaRequest{Corpus: "nope", Removed: []string{"x"}}, nil); code != http.StatusNotFound {
		t.Errorf("delta unknown corpus = %d", code)
	}

	// Bad method.
	if code, _ := getJSON(t, ts.URL+"/assess", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /assess = %d", code)
	}

	// Bad ASIL.
	if code, _ := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{ASIL: "Z", Files: smallCorpus()}, nil); code != http.StatusBadRequest {
		t.Errorf("bad asil = %d", code)
	}

	// Empty corpus spec.
	if code, _ := postJSON(t, ts.URL+"/assess", service.AssessRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty assess = %d", code)
	}

	// Dir ingest disabled by default.
	if code, _ := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Dir: "/tmp"}, nil); code != http.StatusForbidden {
		t.Errorf("dir ingest = %d, want 403", code)
	}

	// Empty delta.
	postJSON(t, ts.URL+"/assess", service.AssessRequest{Corpus: "e", Files: smallCorpus()}, nil)
	if code, _ := postJSON(t, ts.URL+"/delta", service.DeltaRequest{Corpus: "e"}, nil); code != http.StatusBadRequest {
		t.Errorf("empty delta = %d", code)
	}
}

// postRaw posts a raw body (not necessarily valid JSON).
func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// report fetches the full report body for byte-level comparison.
func report(t *testing.T, ts *httptest.Server, corpus string) string {
	t.Helper()
	code, body := getJSON(t, ts.URL+"/report?corpus="+corpus, nil)
	if code != http.StatusOK {
		t.Fatalf("/report %s = %d: %s", corpus, code, body)
	}
	return body
}

// TestServiceErrorPathsLeaveStateUntouched drives every rejection path —
// malformed JSON, unknown corpus, delta against a file the corpus does
// not hold, oversized body — and asserts both the status code and that
// the corpus state (the full report, byte for byte) is unchanged by the
// failed request.
func TestServiceErrorPathsLeaveStateUntouched(t *testing.T) {
	svc := service.New()
	svc.MaxBody = 4096
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	if code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "c", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatalf("/assess = %d: %s", code, body)
	}
	baseline := report(t, ts, "c")

	// Malformed JSON bodies: truncated object, bare garbage.
	for _, raw := range []string{`{"corpus":`, `not json at all`, `[1,2,3`} {
		for _, ep := range []string{"/assess", "/delta"} {
			if code, _ := postRaw(t, ts.URL+ep, raw); code != http.StatusBadRequest {
				t.Errorf("POST %s with %q = %d, want 400", ep, raw, code)
			}
		}
	}

	// Unknown corpus ID on every corpus-scoped endpoint.
	if code, _ := getJSON(t, ts.URL+"/report?corpus=ghost", nil); code != http.StatusNotFound {
		t.Errorf("/report unknown corpus = %d, want 404", code)
	}
	if code, _ := getJSON(t, ts.URL+"/findings?corpus=ghost", nil); code != http.StatusNotFound {
		t.Errorf("/findings unknown corpus = %d, want 404", code)
	}
	if code, _ := postJSON(t, ts.URL+"/delta",
		service.DeltaRequest{Corpus: "ghost", Removed: []string{"m/a.c"}}, nil); code != http.StatusNotFound {
		t.Errorf("/delta unknown corpus = %d, want 404", code)
	}

	// Delta removing a file the corpus does not hold: rejected before
	// any mutation, even when combined with an otherwise-valid edit.
	code, body := postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus:  "c",
		Changed: map[string]string{"m/a.c": "int ga;\n"},
		Removed: []string{"m/missing.c"},
	}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("/delta removing missing file = %d, want 422 (%s)", code, body)
	}

	// Oversized body: 413 from the MaxBody cap.
	big := strings.Repeat("x", 8192)
	code, _ = postJSON(t, ts.URL+"/delta", service.DeltaRequest{
		Corpus: "c", Changed: map[string]string{"m/a.c": big}}, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized /delta = %d, want 413", code)
	}
	code, _ = postJSON(t, ts.URL+"/assess", service.AssessRequest{
		Corpus: "c2", Files: map[string]string{"m/x.c": big}}, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized /assess = %d, want 413", code)
	}
	if code, _ := getJSON(t, ts.URL+"/report?corpus=c2", nil); code != http.StatusNotFound {
		t.Errorf("oversized /assess still created corpus c2")
	}

	// After all failed requests the corpus must be byte-identical.
	if after := report(t, ts, "c"); after != baseline {
		t.Error("a failed request mutated corpus state")
	}
}

// TestFindingsEndpoint checks the /findings rows against the summary.
func TestFindingsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var ar service.AssessResponse
	if code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "f", Files: smallCorpus()}, &ar); code != http.StatusOK {
		t.Fatalf("/assess = %d: %s", code, body)
	}
	var fr service.FindingsResponse
	if code, body := getJSON(t, ts.URL+"/findings?corpus=f", &fr); code != http.StatusOK {
		t.Fatalf("/findings = %d: %s", code, body)
	}
	if fr.Count != len(fr.Findings) || fr.Count != ar.Summary.Findings {
		t.Fatalf("findings count %d (rows %d) != summary %d",
			fr.Count, len(fr.Findings), ar.Summary.Findings)
	}
	byRule := make(map[string]int)
	for _, row := range fr.Findings {
		byRule[row.Rule]++
		if row.File == "" || row.Line < 1 || row.Msg == "" || row.Severity == "" {
			t.Fatalf("incomplete finding row: %+v", row)
		}
	}
	for rule, n := range ar.Summary.ByRule {
		if byRule[rule] != n {
			t.Errorf("rule %s: rows %d != summary %d", rule, byRule[rule], n)
		}
	}
}

// TestConcurrentClients exercises the incremental path under concurrent
// load: parallel deltas and reports against shared and distinct corpora
// (run under -race in CI). Responses must stay internally consistent.
func TestConcurrentClients(t *testing.T) {
	ts := newTestServer(t)

	for _, name := range []string{"shared", "solo-0", "solo-1"} {
		code, body := postJSON(t, ts.URL+"/assess",
			service.AssessRequest{Corpus: name, Files: smallCorpus()}, nil)
		if code != http.StatusOK {
			t.Fatalf("assess %s = %d: %s", name, code, body)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			corpus := "shared"
			if c < 2 {
				corpus = fmt.Sprintf("solo-%d", c)
			}
			for i := 0; i < 6; i++ {
				var dr service.DeltaResponse
				code, body := postJSON(t, ts.URL+"/delta", service.DeltaRequest{
					Corpus: corpus,
					Changed: map[string]string{
						"m/b.c": fmt.Sprintf(
							"int fb(int x) { while (x > %d) { x--; } return x; }\n", c*100+i),
					},
				}, &dr)
				if code != http.StatusOK {
					errc <- fmt.Errorf("client %d delta %d = %d: %s", c, i, code, body)
					return
				}
				if dr.Summary.Files != 3 {
					errc <- fmt.Errorf("client %d: summary files = %d", c, dr.Summary.Files)
					return
				}
				var rr service.ReportResponse
				code, body = getJSON(t, ts.URL+"/report?corpus="+corpus, &rr)
				if code != http.StatusOK {
					errc <- fmt.Errorf("client %d report %d = %d: %s", c, i, code, body)
					return
				}
				if len(rr.Observations) != 14 {
					errc <- fmt.Errorf("client %d: observations = %d", c, len(rr.Observations))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentDisjointShardDeltas is the shard-aware-locking
// regression gate: two deltas to disjoint modules submitted concurrently
// must both succeed (the per-corpus lock no longer serializes /delta end
// to end) and leave the corpus in exactly the state sequential
// application produces. Disjoint-module deltas commute, so the expected
// state is order-independent; the test pins byte-identical /report and
// /findings payloads against a sequentially-driven reference server.
// CI runs this under -race, which also proves the prepare phases that
// overlap under the read lock are data-race-free.
func TestConcurrentDisjointShardDeltas(t *testing.T) {
	corpus := map[string]string{
		"alpha/a.c":  "int ga;\nint fa(int x) { if (x > 0) { return 1; } return 0; }\n",
		"alpha/a2.c": "int fa2(int x) { return x; }\n",
		"beta/b.c":   "int fb(int x) { while (x > 0) { x--; } return x; }\n",
		"gamma/c.c":  "void fc(void) { fb(3); }\n",
	}
	deltaAlpha := map[string]string{
		"alpha/a.c": "int ga;\nint fa(int x) { goto done;\ndone: return x; }\n",
	}
	deltaBeta := map[string]string{
		"beta/b.c":  "int fb(int x) { int y; return y + x; }\n",
		"beta/b2.c": "float fb2(float s) { return (int)s; }\n",
	}

	finalState := func(concurrent bool) (string, string) {
		t.Helper()
		ts := newTestServer(t)
		if code, body := postJSON(t, ts.URL+"/assess",
			service.AssessRequest{Corpus: "shards", Files: corpus}, nil); code != http.StatusOK {
			t.Fatalf("assess = %d: %s", code, body)
		}
		apply := func(changed map[string]string) error {
			code, body := postJSON(t, ts.URL+"/delta",
				service.DeltaRequest{Corpus: "shards", Changed: changed}, nil)
			if code != http.StatusOK {
				return fmt.Errorf("delta = %d: %s", code, body)
			}
			return nil
		}
		if concurrent {
			start := make(chan struct{})
			errc := make(chan error, 2)
			var wg sync.WaitGroup
			for _, d := range []map[string]string{deltaAlpha, deltaBeta} {
				d := d
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					errc <- apply(d)
				}()
			}
			close(start)
			wg.Wait()
			close(errc)
			for err := range errc {
				if err != nil {
					t.Fatalf("concurrent disjoint delta failed: %v", err)
				}
			}
		} else {
			for _, d := range []map[string]string{deltaAlpha, deltaBeta} {
				if err := apply(d); err != nil {
					t.Fatalf("sequential delta failed: %v", err)
				}
			}
		}
		_, report := getJSON(t, ts.URL+"/report?corpus=shards", nil)
		_, findings := getJSON(t, ts.URL+"/findings?corpus=shards", nil)
		return report, findings
	}

	wantReport, wantFindings := finalState(false)
	for round := 0; round < 4; round++ {
		gotReport, gotFindings := finalState(true)
		if gotReport != wantReport {
			t.Fatalf("round %d: concurrent disjoint deltas diverge from sequential application\nwant %s\ngot  %s",
				round, wantReport, gotReport)
		}
		if gotFindings != wantFindings {
			t.Fatalf("round %d: concurrent findings diverge from sequential application", round)
		}
	}
}

// TestConcurrentSameShardDeltas pins the conflicting-edit path: deltas
// to the same module serialize on the module lock, so both succeed and
// the final state matches one of the two serial orders.
func TestConcurrentSameShardDeltas(t *testing.T) {
	ts := newTestServer(t)
	if code, body := postJSON(t, ts.URL+"/assess",
		service.AssessRequest{Corpus: "same", Files: smallCorpus()}, nil); code != http.StatusOK {
		t.Fatalf("assess = %d: %s", code, body)
	}
	variants := []string{
		"int fb(int x) { return x + 1; }\n",
		"int fb(int x) { return x + 2; }\n",
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, len(variants))
	for _, src := range variants {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			code, body := postJSON(t, ts.URL+"/delta", service.DeltaRequest{
				Corpus: "same", Changed: map[string]string{"m/b.c": src}}, nil)
			if code != http.StatusOK {
				errc <- fmt.Errorf("delta = %d: %s", code, body)
				return
			}
			errc <- nil
		}()
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	var rr service.ReportResponse
	if code, body := getJSON(t, ts.URL+"/report?corpus=same", &rr); code != http.StatusOK {
		t.Fatalf("report = %d: %s", code, body)
	}
	if len(rr.Observations) != 14 {
		t.Fatalf("observations = %d after conflicting deltas", len(rr.Observations))
	}
}
