package service_test

// TestSameCorpusDeltaStorm hammers ONE corpus with concurrent /delta
// writers — several workers per module, so the module locks genuinely
// contend — while readers pull /report and /findings mid-storm. It pins
// the prepare/commit split (the RUnlock→Lock window in handleDelta):
// whatever the interleaving, the final state must be byte-identical to
// a sequential replay of the same final contents, and under -race the
// mixed readers validate that rendering under the read lock does not
// race delta prepares.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/service"
)

func TestSameCorpusDeltaStorm(t *testing.T) {
	base := map[string]string{
		"mod0/a.c": "int ga;\nint fa(int x) { if (x > 0) { return 1; } return 0; }\n",
		"mod1/b.c": "int fb(int x) { while (x > 0) { x--; } return x; }\n",
		"mod2/c.c": "void fc(void) { fb(3); }\n",
	}
	const workers = 9
	const rounds = 3
	path := func(g int) string { return fmt.Sprintf("mod%d/storm_%02d.c", g%3, g) }
	src := func(g, r int) string {
		return fmt.Sprintf("int storm%d_v%d(int x) {\n  if (x > %d) {\n    x = x - %d;\n  }\n  return x;\n}\n", g, r, g, r+1)
	}

	serve := func() *httptest.Server {
		ts := newTestServer(t)
		if code, body := postJSON(t, ts.URL+"/assess",
			service.AssessRequest{Corpus: "storm", Files: base}, nil); code != http.StatusOK {
			t.Fatalf("assess = %d: %s", code, body)
		}
		return ts
	}
	finalState := func(ts *httptest.Server) (string, string) {
		t.Helper()
		_, report := getJSON(t, ts.URL+"/report?corpus=storm", nil)
		_, findings := getJSON(t, ts.URL+"/findings?corpus=storm", nil)
		return report, findings
	}

	// Reference: the same final per-file contents applied sequentially.
	seq := serve()
	for g := 0; g < workers; g++ {
		if code, body := postJSON(t, seq.URL+"/delta", service.DeltaRequest{
			Corpus: "storm", Changed: map[string]string{path(g): src(g, rounds-1)}}, nil); code != http.StatusOK {
			t.Fatalf("sequential delta %d = %d: %s", g, code, body)
		}
	}
	wantReport, wantFindings := finalState(seq)

	for round := 0; round < 2; round++ {
		ts := serve()
		start := make(chan struct{})
		errc := make(chan error, workers)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for r := 0; r < rounds; r++ {
					code, body := postJSON(t, ts.URL+"/delta", service.DeltaRequest{
						Corpus: "storm", Changed: map[string]string{path(g): src(g, r)}}, nil)
					if code != http.StatusOK {
						errc <- fmt.Errorf("worker %d round %d: delta = %d: %s", g, r, code, body)
						return
					}
					// A third of the workers read mid-storm, exercising
					// the projection render concurrently with prepares.
					if g%3 == 0 {
						if code, body := getJSON(t, ts.URL+"/report?corpus=storm", nil); code != http.StatusOK {
							errc <- fmt.Errorf("worker %d round %d: report = %d: %s", g, r, code, body)
							return
						}
					}
				}
				errc <- nil
			}(g)
		}
		close(start)
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				t.Fatal(err)
			}
		}
		gotReport, gotFindings := finalState(ts)
		if gotReport != wantReport {
			t.Fatalf("round %d: storm final report diverges from sequential replay\nwant %.400s\ngot  %.400s",
				round, wantReport, gotReport)
		}
		if gotFindings != wantFindings {
			t.Fatalf("round %d: storm final findings diverge from sequential replay", round)
		}
	}
}
