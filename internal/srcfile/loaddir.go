package srcfile

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadOptions filters a directory ingest.
type LoadOptions struct {
	// MaxFileSize skips files larger than this many bytes; 0 means the
	// default of 4 MiB (generated or vendored blobs, not source).
	MaxFileSize int64
	// SkipDirs are directory base names pruned from the walk; nil means
	// DefaultSkipDirs. An explicit empty non-nil slice prunes nothing.
	SkipDirs []string
	// Exts is the accepted extension set (lower-case, with dot); nil
	// means DefaultSourceExts.
	Exts []string
	// Module forces every loaded file into one module; empty derives the
	// module from the first path segment as usual.
	Module string
}

// DefaultSkipDirs are the directory names LoadDir prunes by default:
// VCS metadata and common build/vendor output.
func DefaultSkipDirs() []string {
	return []string{".git", ".svn", ".hg", "build", "bazel-out", "node_modules", "third_party"}
}

// DefaultSourceExts are the C/C++/CUDA extensions LoadDir accepts by
// default.
func DefaultSourceExts() []string {
	return []string{".c", ".h", ".cc", ".cpp", ".cxx", ".hpp", ".hh", ".cu", ".cuh"}
}

const defaultMaxFileSize = 4 << 20

// LoadDir ingests a real on-disk source tree into a FileSet: every file
// under root whose extension is in the accepted set becomes a corpus
// file with a slash-separated root-relative path, language detected from
// the extension (LanguageForPath). Oversized files, skipped directories,
// and unreadable entries (permission-denied files or directories, files
// racing deletion) are pruned rather than aborting the ingest — a single
// bad entry must not take down the assessment of a large tree. Symlinks
// are never followed, so symlink cycles terminate by construction. Files
// load in sorted path order, so the resulting corpus — and every
// assessment derived from it — is deterministic for a given tree.
func LoadDir(root string, opts LoadOptions) (*FileSet, error) {
	maxSize := opts.MaxFileSize
	if maxSize == 0 {
		maxSize = defaultMaxFileSize
	}
	skip := opts.SkipDirs
	if skip == nil {
		skip = DefaultSkipDirs()
	}
	skipSet := make(map[string]bool, len(skip))
	for _, d := range skip {
		skipSet[d] = true
	}
	exts := opts.Exts
	if exts == nil {
		exts = DefaultSourceExts()
	}
	extSet := make(map[string]bool, len(exts))
	for _, e := range exts {
		extSet[strings.ToLower(e)] = true
	}

	info, err := os.Stat(root)
	if err != nil {
		return nil, fmt.Errorf("srcfile: load %s: %w", root, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("srcfile: load %s: not a directory", root)
	}

	var paths []string
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			// The root itself failing is fatal; anything below it
			// (unreadable subdirectory, entry vanishing mid-walk) is
			// pruned. WalkDir already refuses to descend into a
			// directory it could not read, so returning nil skips it.
			if p == root {
				return err
			}
			return nil
		}
		if d.IsDir() {
			if p != root && skipSet[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		// Symlinks (and other irregular entries) are skipped, not
		// followed: a cycle of symlinked directories can never loop the
		// walk, and a dangling link never errors it.
		if !d.Type().IsRegular() {
			return nil
		}
		if !extSet[strings.ToLower(filepath.Ext(p))] {
			return nil
		}
		if fi, err := d.Info(); err != nil {
			return nil // raced away; skip
		} else if fi.Size() > maxSize {
			return nil
		}
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("srcfile: load %s: %w", root, err)
	}
	sort.Strings(paths)

	out := NewFileSet()
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			continue // unreadable (permissions, raced deletion): skip
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return nil, fmt.Errorf("srcfile: load %s: %w", root, err)
		}
		f := &File{
			Path:   filepath.ToSlash(rel),
			Module: opts.Module,
			Src:    string(src),
		}
		f.Lang = LanguageForPath(f.Path)
		out.Add(f)
	}
	return out, nil
}
