package srcfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes path→content pairs under a temp root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for p, src := range files {
		dst := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadDir(t *testing.T) {
	root := writeTree(t, map[string]string{
		"perception/detector.cc":  "int detect() { return 0; }\n",
		"perception/kernel.cu":    "__global__ void k() {}\n",
		"planning/planner.c":      "int plan;\n",
		"planning/planner.h":      "extern int plan;\n",
		"docs/readme.md":          "not source\n",
		".git/objects/aa/bb.c":    "int vcs;\n",
		"build/gen.cc":            "int generated;\n",
		"third_party/vendored.c":  "int vendored;\n",
		"perception/notes.txt":    "skip me\n",
		"perception/deep/util.hh": "struct U {};\n",
	})

	fs, err := LoadDir(root, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"perception/deep/util.hh",
		"perception/detector.cc",
		"perception/kernel.cu",
		"planning/planner.c",
		"planning/planner.h",
	}
	if fs.Len() != len(want) {
		var got []string
		for _, f := range fs.Files() {
			got = append(got, f.Path)
		}
		t.Fatalf("loaded %d files %v, want %d", fs.Len(), got, len(want))
	}
	for i, p := range want {
		if fs.Files()[i].Path != p {
			t.Errorf("file %d = %q, want %q (sorted order)", i, fs.Files()[i].Path, p)
		}
	}
	if fs.Lookup("perception/kernel.cu").Lang != LangCUDA {
		t.Error("CUDA language not detected")
	}
	if fs.Lookup("planning/planner.c").Lang != LangC {
		t.Error("C language not detected")
	}
	if fs.Lookup("planning/planner.h").Lang != LangHeader {
		t.Error("header language not detected")
	}
	mods := fs.Modules()
	if len(mods) != 2 || mods[0] != "perception" || mods[1] != "planning" {
		t.Errorf("modules = %v", mods)
	}
}

func TestLoadDirFilters(t *testing.T) {
	root := writeTree(t, map[string]string{
		"m/small.c": "int s;\n",
		"m/big.c":   strings.Repeat("// padding\n", 64),
	})
	fs, err := LoadDir(root, LoadOptions{MaxFileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 1 || fs.Lookup("m/small.c") == nil {
		t.Errorf("size filter: loaded %d files", fs.Len())
	}

	// Restricting extensions.
	fs, err = LoadDir(root, LoadOptions{Exts: []string{".cu"}})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 0 {
		t.Errorf("ext filter: loaded %d files, want 0", fs.Len())
	}

	// Module override.
	fs, err = LoadDir(root, LoadOptions{Module: "ingest"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs.Files() {
		if f.ModuleName() != "ingest" {
			t.Errorf("module override: %q", f.ModuleName())
		}
	}
}

// TestLoadDirSymlinkCycle builds a directory symlink cycle plus a
// dangling link and a file link; the walk must terminate without error,
// load every regular file once, and never follow a link.
func TestLoadDirSymlinkCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/inner.c": "int inner;\n",
		"top.c":     "int top;\n",
	})
	// a/loop → a (self-cycle through the parent), cycle.c → top.c,
	// gone.c → missing target.
	mustLink := func(target, link string) {
		t.Helper()
		if err := os.Symlink(target, filepath.Join(root, link)); err != nil {
			t.Skipf("symlinks unavailable: %v", err)
		}
	}
	mustLink(filepath.Join(root, "a"), "a/loop")
	mustLink(filepath.Join(root, "top.c"), "cycle.c")
	mustLink(filepath.Join(root, "missing.c"), "gone.c")

	fs, err := LoadDir(root, LoadOptions{})
	if err != nil {
		t.Fatalf("symlink cycle errored the ingest: %v", err)
	}
	if fs.Len() != 2 || fs.Lookup("a/inner.c") == nil || fs.Lookup("top.c") == nil {
		var got []string
		for _, f := range fs.Files() {
			got = append(got, f.Path)
		}
		t.Fatalf("loaded %v, want exactly [a/inner.c top.c]", got)
	}
}

// TestLoadDirUnreadableFile chmods one file unreadable; the ingest must
// skip it and load the rest instead of aborting.
func TestLoadDirUnreadableFile(t *testing.T) {
	root := writeTree(t, map[string]string{
		"m/ok.c":     "int ok;\n",
		"m/secret.c": "int secret;\n",
	})
	secret := filepath.Join(root, "m", "secret.c")
	if err := os.Chmod(secret, 0o000); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chmod(secret, 0o644) })
	if _, err := os.ReadFile(secret); err == nil {
		t.Skip("running with privileges that ignore file modes (root)")
	}

	fs, err := LoadDir(root, LoadOptions{})
	if err != nil {
		t.Fatalf("unreadable file errored the ingest: %v", err)
	}
	if fs.Len() != 1 || fs.Lookup("m/ok.c") == nil {
		t.Fatalf("loaded %d files, want just m/ok.c", fs.Len())
	}
}

// TestLoadDirUnreadableDir chmods a subdirectory unreadable; the walk
// must prune it and still load the readable part of the tree.
func TestLoadDirUnreadableDir(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pub/ok.c":      "int ok;\n",
		"priv/hidden.c": "int hidden;\n",
	})
	priv := filepath.Join(root, "priv")
	if err := os.Chmod(priv, 0o000); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chmod(priv, 0o755) })
	if _, err := os.ReadDir(priv); err == nil {
		t.Skip("running with privileges that ignore directory modes (root)")
	}

	fs, err := LoadDir(root, LoadOptions{})
	if err != nil {
		t.Fatalf("unreadable directory errored the ingest: %v", err)
	}
	if fs.Len() != 1 || fs.Lookup("pub/ok.c") == nil {
		t.Fatalf("loaded %d files, want just pub/ok.c", fs.Len())
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing"), LoadOptions{}); err == nil {
		t.Error("missing root must error")
	}
	file := filepath.Join(t.TempDir(), "f.c")
	if err := os.WriteFile(file, []byte("int x;"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(file, LoadOptions{}); err == nil {
		t.Error("non-directory root must error")
	}
}
