// Package srcfile models the source code under assessment: files,
// positions, languages, and the module taxonomy of an autonomous-driving
// framework (Figure 1 of the paper).
//
// The assessment toolchain never touches the real filesystem for its
// subjects; sources are held in a FileSet so that synthetic corpora,
// bundled samples, and user-provided trees are handled uniformly.
package srcfile

import (
	"fmt"
	"path"
	"sort"
	"strings"
)

// Language identifies the dialect a source file is written in. The paper's
// subject mixes C, C++, and CUDA; the parser accepts a superset but
// checkers use the language to decide which rules apply (e.g. MISRA C rules
// apply to C and to the C-like subset of C++ used in Apollo).
type Language int

const (
	// LangC is ISO C (C99-flavoured subset).
	LangC Language = iota
	// LangCPP is C++ (the restricted dialect the frontend understands).
	LangCPP
	// LangCUDA is CUDA C/C++: LangCPP plus kernel qualifiers and launches.
	LangCUDA
	// LangHeader is a C/C++ header; treated as LangCPP for parsing.
	LangHeader
)

// String returns the conventional name of the language.
func (l Language) String() string {
	switch l {
	case LangC:
		return "C"
	case LangCPP:
		return "C++"
	case LangCUDA:
		return "CUDA"
	case LangHeader:
		return "header"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// LanguageForPath infers the language from a file extension.
func LanguageForPath(p string) Language {
	switch strings.ToLower(path.Ext(p)) {
	case ".c":
		return LangC
	case ".cu", ".cuh":
		return LangCUDA
	case ".h", ".hpp", ".hh":
		return LangHeader
	default:
		return LangCPP
	}
}

// Pos is a position within a file: 1-based line and column plus byte offset.
type Pos struct {
	Line   int
	Col    int
	Offset int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Before reports whether p precedes q in the file.
func (p Pos) Before(q Pos) bool { return p.Offset < q.Offset }

// Span is a half-open source range [Start, End).
type Span struct {
	Start Pos
	End   Pos
}

// String formats the span as start-end.
func (s Span) String() string { return s.Start.String() + "-" + s.End.String() }

// File is one source file under assessment.
type File struct {
	// Path is the corpus-relative path, e.g. "perception/yolo/region_layer.c".
	Path string
	// Module is the top-level AD module this file belongs to ("perception",
	// "planning", ...). Derived from the first path segment when empty.
	Module string
	// Lang is the dialect; derived from the extension when files are added
	// through FileSet.Add.
	Lang Language
	// Src is the file content.
	Src string

	// hashVal memoizes Hash over hashSrc: Go string equality fast-paths
	// on identical headers, so repeated hashing of an unmodified file is
	// O(1). hashOK distinguishes "never hashed" from a legitimate zero.
	hashVal uint64
	hashSrc string
	hashOK  bool
}

// ModuleName returns the explicit module, or the first path segment.
func (f *File) ModuleName() string {
	if f.Module != "" {
		return f.Module
	}
	if i := strings.IndexByte(f.Path, '/'); i >= 0 {
		return f.Path[:i]
	}
	return f.Path
}

// Base returns the file name without directories.
func (f *File) Base() string { return path.Base(f.Path) }

// Hash returns the FNV-1a content hash of the file. The incremental
// pipeline keys per-file caches (parse results, rule findings, metrics
// rows) on it, so two files with identical content share cache entries
// and an in-place edit is detected by a hash mismatch. The hash is
// memoized per content; like the rest of File, Hash is not safe for
// unsynchronized concurrent mutation.
func (f *File) Hash() uint64 {
	if f.hashOK && f.hashSrc == f.Src {
		return f.hashVal
	}
	h := HashSrc(f.Src)
	f.hashVal, f.hashSrc, f.hashOK = h, f.Src, true
	return h
}

// HashSrc returns the content hash of a source string — the same value
// Hash memoizes for a File holding it. Callers that retained a source
// string (snapshot restore defers hashing until a shard is touched, and
// FileSet.Add replaces file structs in place, so a retained *File may
// no longer hold the retained content) hash the string directly.
func HashSrc(src string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= prime64
	}
	return h
}

// LineCount returns the number of physical lines in the file. A final
// line without a trailing newline still counts; CRLF terminators count
// once (the count follows '\n').
func (f *File) LineCount() int {
	if f.Src == "" {
		return 0
	}
	n := strings.Count(f.Src, "\n")
	if !strings.HasSuffix(f.Src, "\n") {
		n++
	}
	return n
}

// Line returns the 1-based line text (without the newline and without a
// trailing '\r' from CRLF input), or "" out of range.
func (f *File) Line(n int) string {
	if n < 1 {
		return ""
	}
	cur := 1
	start := 0
	for i := 0; i < len(f.Src); i++ {
		if f.Src[i] == '\n' {
			if cur == n {
				return trimCR(f.Src[start:i])
			}
			cur++
			start = i + 1
		}
	}
	if cur == n && start < len(f.Src) {
		return trimCR(f.Src[start:])
	}
	return ""
}

// trimCR drops one trailing carriage return (CRLF line endings).
func trimCR(s string) string {
	if strings.HasSuffix(s, "\r") {
		return s[:len(s)-1]
	}
	return s
}

// FileSet is an ordered collection of files forming a corpus. It is
// internally partitioned into module-keyed shards (maintained
// incrementally by Add/Remove), so per-module views — the unit the
// sharded assessment pipeline works in — cost O(shard), not a corpus
// scan.
type FileSet struct {
	files    []*File
	byPath   map[string]*File
	byModule map[string][]*File
}

// NewFileSet returns an empty file set.
func NewFileSet() *FileSet {
	return &FileSet{
		byPath:   make(map[string]*File),
		byModule: make(map[string][]*File),
	}
}

// Add inserts a file, inferring language and module when unset.
// Adding a path twice replaces the previous content.
func (fs *FileSet) Add(f *File) *File {
	if f.Lang == LangCPP && f.Path != "" {
		f.Lang = LanguageForPath(f.Path)
	}
	if f.Module == "" {
		f.Module = f.ModuleName()
	}
	if old, ok := fs.byPath[f.Path]; ok {
		oldMod := old.ModuleName()
		*old = *f
		if newMod := old.ModuleName(); newMod != oldMod {
			fs.moduleRemove(oldMod, old)
			fs.byModule[newMod] = append(fs.byModule[newMod], old)
		}
		return old
	}
	fs.files = append(fs.files, f)
	fs.byPath[f.Path] = f
	fs.byModule[f.ModuleName()] = append(fs.byModule[f.ModuleName()], f)
	return f
}

// moduleRemove drops a file from its module shard, preserving order.
func (fs *FileSet) moduleRemove(mod string, f *File) {
	bucket := fs.byModule[mod]
	for i, ff := range bucket {
		if ff == f {
			fs.byModule[mod] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(fs.byModule[mod]) == 0 {
		delete(fs.byModule, mod)
	}
}

// AddSource is a convenience wrapper building a File from path and content.
func (fs *FileSet) AddSource(path, src string) *File {
	return fs.Add(&File{Path: path, Lang: LanguageForPath(path), Src: src})
}

// Remove deletes the file at path, preserving the order of the rest.
// It reports whether a file was removed.
func (fs *FileSet) Remove(path string) bool {
	f, ok := fs.byPath[path]
	if !ok {
		return false
	}
	delete(fs.byPath, path)
	fs.moduleRemove(f.ModuleName(), f)
	for i, ff := range fs.files {
		if ff.Path == path {
			fs.files = append(fs.files[:i], fs.files[i+1:]...)
			break
		}
	}
	return true
}

// Lookup returns the file at path, or nil.
func (fs *FileSet) Lookup(path string) *File { return fs.byPath[path] }

// Files returns the files in insertion order. The slice must not be mutated.
func (fs *FileSet) Files() []*File { return fs.files }

// Len returns the number of files.
func (fs *FileSet) Len() int { return len(fs.files) }

// Modules returns the sorted list of distinct module names.
func (fs *FileSet) Modules() []string {
	out := make([]string, 0, len(fs.byModule))
	for m := range fs.byModule {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ModuleFiles returns the files belonging to a module, in insertion
// order. The slice is the maintained module shard; it must not be
// mutated.
func (fs *FileSet) ModuleFiles(module string) []*File {
	return fs.byModule[module]
}

// TotalLines returns the number of physical lines across the corpus.
func (fs *FileSet) TotalLines() int {
	n := 0
	for _, f := range fs.files {
		n += f.LineCount()
	}
	return n
}
