package srcfile

import (
	"testing"
	"testing/quick"
)

func TestLanguageForPath(t *testing.T) {
	cases := map[string]Language{
		"a.c": LangC, "dir/b.cu": LangCUDA, "c.cuh": LangCUDA,
		"d.h": LangHeader, "e.hpp": LangHeader, "f.cc": LangCPP,
		"g.cpp": LangCPP, "noext": LangCPP,
	}
	for p, want := range cases {
		if got := LanguageForPath(p); got != want {
			t.Errorf("LanguageForPath(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestLanguageString(t *testing.T) {
	for _, l := range []Language{LangC, LangCPP, LangCUDA, LangHeader} {
		if l.String() == "" {
			t.Errorf("empty name for %d", int(l))
		}
	}
}

func TestModuleName(t *testing.T) {
	f := &File{Path: "perception/camera/detector.cc"}
	if f.ModuleName() != "perception" {
		t.Errorf("module = %q", f.ModuleName())
	}
	g := &File{Path: "flat.c"}
	if g.ModuleName() != "flat.c" {
		t.Errorf("flat module = %q", g.ModuleName())
	}
	h := &File{Path: "a/b.c", Module: "override"}
	if h.ModuleName() != "override" {
		t.Errorf("override module = %q", h.ModuleName())
	}
}

func TestLineCountAndLine(t *testing.T) {
	f := &File{Src: "one\ntwo\nthree"}
	if f.LineCount() != 3 {
		t.Errorf("lines = %d", f.LineCount())
	}
	if f.Line(2) != "two" {
		t.Errorf("line 2 = %q", f.Line(2))
	}
	if f.Line(3) != "three" {
		t.Errorf("line 3 = %q", f.Line(3))
	}
	if f.Line(0) != "" || f.Line(99) != "" {
		t.Error("out-of-range lines must be empty")
	}
	g := &File{Src: "trailing\n"}
	if g.LineCount() != 1 {
		t.Errorf("trailing newline lines = %d", g.LineCount())
	}
	if (&File{}).LineCount() != 0 {
		t.Error("empty file must have 0 lines")
	}
}

func TestFileSetAddLookup(t *testing.T) {
	fs := NewFileSet()
	fs.AddSource("m/a.c", "int x;")
	fs.AddSource("m/b.cu", "int y;")
	fs.AddSource("n/c.cc", "int z;")
	if fs.Len() != 3 {
		t.Fatalf("len = %d", fs.Len())
	}
	if fs.Lookup("m/b.cu").Lang != LangCUDA {
		t.Error("language not inferred on AddSource")
	}
	if fs.Lookup("missing") != nil {
		t.Error("missing lookup should be nil")
	}
	mods := fs.Modules()
	if len(mods) != 2 || mods[0] != "m" || mods[1] != "n" {
		t.Errorf("modules = %v", mods)
	}
	if len(fs.ModuleFiles("m")) != 2 {
		t.Errorf("module files = %d", len(fs.ModuleFiles("m")))
	}
	if fs.TotalLines() != 3 {
		t.Errorf("total lines = %d", fs.TotalLines())
	}
}

func TestFileSetReplaceOnDuplicatePath(t *testing.T) {
	fs := NewFileSet()
	fs.AddSource("a.c", "int x;")
	fs.AddSource("a.c", "int y;\nint z;")
	if fs.Len() != 1 {
		t.Fatalf("len = %d, want 1 (replace)", fs.Len())
	}
	if fs.Lookup("a.c").LineCount() != 2 {
		t.Error("replacement content lost")
	}
}

func TestPosOrdering(t *testing.T) {
	a := Pos{Line: 1, Col: 1, Offset: 0}
	b := Pos{Line: 2, Col: 1, Offset: 10}
	if !a.Before(b) || b.Before(a) {
		t.Error("Before ordering broken")
	}
	if a.String() != "1:1" {
		t.Errorf("pos string = %q", a.String())
	}
	sp := Span{Start: a, End: b}
	if sp.String() != "1:1-2:1" {
		t.Errorf("span string = %q", sp.String())
	}
}

// Property: Line(i) joined with newlines reconstructs files without a
// trailing newline.
func TestLineRoundTripProperty(t *testing.T) {
	f := func(parts []uint8) bool {
		src := ""
		want := make([]string, 0, len(parts))
		for i, p := range parts {
			// Lines are non-empty: an empty final line is indistinguishable
			// from a trailing newline under the LineCount convention.
			line := "x"
			for j := 0; j < int(p%4); j++ {
				line += "x"
			}
			want = append(want, line)
			src += line
			if i < len(parts)-1 {
				src += "\n"
			}
		}
		if len(parts) == 0 {
			return true
		}
		file := &File{Src: src}
		if file.LineCount() != len(want) {
			return false
		}
		for i, w := range want {
			if file.Line(i+1) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
