package srcfile

import (
	"testing"
	"testing/quick"
)

func TestLanguageForPath(t *testing.T) {
	cases := map[string]Language{
		"a.c": LangC, "dir/b.cu": LangCUDA, "c.cuh": LangCUDA,
		"d.h": LangHeader, "e.hpp": LangHeader, "f.cc": LangCPP,
		"g.cpp": LangCPP, "noext": LangCPP,
	}
	for p, want := range cases {
		if got := LanguageForPath(p); got != want {
			t.Errorf("LanguageForPath(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestLanguageString(t *testing.T) {
	for _, l := range []Language{LangC, LangCPP, LangCUDA, LangHeader} {
		if l.String() == "" {
			t.Errorf("empty name for %d", int(l))
		}
	}
}

func TestModuleName(t *testing.T) {
	f := &File{Path: "perception/camera/detector.cc"}
	if f.ModuleName() != "perception" {
		t.Errorf("module = %q", f.ModuleName())
	}
	g := &File{Path: "flat.c"}
	if g.ModuleName() != "flat.c" {
		t.Errorf("flat module = %q", g.ModuleName())
	}
	h := &File{Path: "a/b.c", Module: "override"}
	if h.ModuleName() != "override" {
		t.Errorf("override module = %q", h.ModuleName())
	}
}

func TestLineCountAndLine(t *testing.T) {
	f := &File{Src: "one\ntwo\nthree"}
	if f.LineCount() != 3 {
		t.Errorf("lines = %d", f.LineCount())
	}
	if f.Line(2) != "two" {
		t.Errorf("line 2 = %q", f.Line(2))
	}
	if f.Line(3) != "three" {
		t.Errorf("line 3 = %q", f.Line(3))
	}
	if f.Line(0) != "" || f.Line(99) != "" {
		t.Error("out-of-range lines must be empty")
	}
	g := &File{Src: "trailing\n"}
	if g.LineCount() != 1 {
		t.Errorf("trailing newline lines = %d", g.LineCount())
	}
	if (&File{}).LineCount() != 0 {
		t.Error("empty file must have 0 lines")
	}
}

// Regression: CRLF files must report the same line count and line text
// as their LF twins — the '\r' is a terminator byte, not line content
// (findings and NLOC metrics read these everywhere).
func TestLineCRLF(t *testing.T) {
	crlf := &File{Src: "one\r\ntwo\r\nthree\r\n"}
	if crlf.LineCount() != 3 {
		t.Errorf("CRLF lines = %d, want 3", crlf.LineCount())
	}
	for i, want := range []string{"one", "two", "three"} {
		if got := crlf.Line(i + 1); got != want {
			t.Errorf("CRLF line %d = %q, want %q", i+1, got, want)
		}
	}
	// No trailing newline after a CRLF body.
	partial := &File{Src: "one\r\ntwo"}
	if partial.LineCount() != 2 {
		t.Errorf("partial CRLF lines = %d, want 2", partial.LineCount())
	}
	if partial.Line(1) != "one" || partial.Line(2) != "two" {
		t.Errorf("partial CRLF lines = %q, %q", partial.Line(1), partial.Line(2))
	}
	// A file that is just a CR-terminated line.
	cr := &File{Src: "only\r\n"}
	if cr.LineCount() != 1 || cr.Line(1) != "only" {
		t.Errorf("single CRLF line = %d, %q", cr.LineCount(), cr.Line(1))
	}
}

// Regression: a line index one past the last line is out of range even
// when the file ends with a newline (previously Line(count+1) returned
// the same "" as a hypothetical empty line, but via the in-range path).
func TestLinePastEnd(t *testing.T) {
	f := &File{Src: "a\nb\n"}
	if f.LineCount() != 2 {
		t.Fatalf("lines = %d", f.LineCount())
	}
	if f.Line(3) != "" || f.Line(2) != "b" {
		t.Errorf("line 3 = %q, line 2 = %q", f.Line(3), f.Line(2))
	}
	// Interior empty lines are real lines.
	g := &File{Src: "a\n\nb"}
	if g.LineCount() != 3 || g.Line(2) != "" || g.Line(3) != "b" {
		t.Errorf("interior empty line: count=%d line2=%q line3=%q",
			g.LineCount(), g.Line(2), g.Line(3))
	}
}

// TotalLines must agree with per-file LineCount across mixed endings.
func TestTotalLinesMixedEndings(t *testing.T) {
	fs := NewFileSet()
	fs.AddSource("a.c", "x\ny\n")     // 2
	fs.AddSource("b.c", "x\r\ny")     // 2, no trailing newline
	fs.AddSource("c.c", "")           // 0
	fs.AddSource("d.c", "no newline") // 1
	if fs.TotalLines() != 5 {
		t.Errorf("total lines = %d, want 5", fs.TotalLines())
	}
}

func TestFileHash(t *testing.T) {
	a := &File{Path: "a.c", Src: "int x;"}
	b := &File{Path: "b.c", Src: "int x;"}
	c := &File{Path: "a.c", Src: "int y;"}
	if a.Hash() != b.Hash() {
		t.Error("identical content must hash equal regardless of path")
	}
	if a.Hash() == c.Hash() {
		t.Error("different content must hash differently")
	}
	if (&File{}).Hash() != (&File{}).Hash() {
		t.Error("empty hash must be stable")
	}
}

func TestFileSetRemove(t *testing.T) {
	fs := NewFileSet()
	fs.AddSource("a.c", "int a;")
	fs.AddSource("b.c", "int b;")
	fs.AddSource("c.c", "int c;")
	if !fs.Remove("b.c") {
		t.Fatal("Remove(b.c) = false")
	}
	if fs.Remove("b.c") {
		t.Error("second Remove must report false")
	}
	if fs.Len() != 2 || fs.Lookup("b.c") != nil {
		t.Errorf("len = %d after remove", fs.Len())
	}
	paths := []string{}
	for _, f := range fs.Files() {
		paths = append(paths, f.Path)
	}
	if paths[0] != "a.c" || paths[1] != "c.c" {
		t.Errorf("order after remove = %v", paths)
	}
}

func TestFileSetAddLookup(t *testing.T) {
	fs := NewFileSet()
	fs.AddSource("m/a.c", "int x;")
	fs.AddSource("m/b.cu", "int y;")
	fs.AddSource("n/c.cc", "int z;")
	if fs.Len() != 3 {
		t.Fatalf("len = %d", fs.Len())
	}
	if fs.Lookup("m/b.cu").Lang != LangCUDA {
		t.Error("language not inferred on AddSource")
	}
	if fs.Lookup("missing") != nil {
		t.Error("missing lookup should be nil")
	}
	mods := fs.Modules()
	if len(mods) != 2 || mods[0] != "m" || mods[1] != "n" {
		t.Errorf("modules = %v", mods)
	}
	if len(fs.ModuleFiles("m")) != 2 {
		t.Errorf("module files = %d", len(fs.ModuleFiles("m")))
	}
	if fs.TotalLines() != 3 {
		t.Errorf("total lines = %d", fs.TotalLines())
	}
}

func TestFileSetReplaceOnDuplicatePath(t *testing.T) {
	fs := NewFileSet()
	fs.AddSource("a.c", "int x;")
	fs.AddSource("a.c", "int y;\nint z;")
	if fs.Len() != 1 {
		t.Fatalf("len = %d, want 1 (replace)", fs.Len())
	}
	if fs.Lookup("a.c").LineCount() != 2 {
		t.Error("replacement content lost")
	}
}

func TestPosOrdering(t *testing.T) {
	a := Pos{Line: 1, Col: 1, Offset: 0}
	b := Pos{Line: 2, Col: 1, Offset: 10}
	if !a.Before(b) || b.Before(a) {
		t.Error("Before ordering broken")
	}
	if a.String() != "1:1" {
		t.Errorf("pos string = %q", a.String())
	}
	sp := Span{Start: a, End: b}
	if sp.String() != "1:1-2:1" {
		t.Errorf("span string = %q", sp.String())
	}
}

// Property: Line(i) joined with newlines reconstructs files without a
// trailing newline.
func TestLineRoundTripProperty(t *testing.T) {
	f := func(parts []uint8) bool {
		src := ""
		want := make([]string, 0, len(parts))
		for i, p := range parts {
			// Lines are non-empty: an empty final line is indistinguishable
			// from a trailing newline under the LineCount convention.
			line := "x"
			for j := 0; j < int(p%4); j++ {
				line += "x"
			}
			want = append(want, line)
			src += line
			if i < len(parts)-1 {
				src += "\n"
			}
		}
		if len(parts) == 0 {
			return true
		}
		file := &File{Src: src}
		if file.LineCount() != len(want) {
			return false
		}
		for i, w := range want {
			if file.Line(i+1) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestModuleBucketsTrackReplaceAndRemove pins the incremental module
// partition: replacing a file with an explicit module override moves it
// between shards, and removals shrink (and eventually drop) the shard.
func TestModuleBucketsTrackReplaceAndRemove(t *testing.T) {
	fs := NewFileSet()
	fs.AddSource("m/a.c", "int a;\n")
	fs.AddSource("m/b.c", "int b;\n")
	fs.AddSource("n/c.c", "int c;\n")

	if got := len(fs.ModuleFiles("m")); got != 2 {
		t.Fatalf("m has %d files, want 2", got)
	}
	// Replace with an explicit override: m/b.c now belongs to module n.
	fs.Add(&File{Path: "m/b.c", Module: "n", Src: "int b2;\n"})
	if got := len(fs.ModuleFiles("m")); got != 1 {
		t.Errorf("m has %d files after override move, want 1", got)
	}
	if got := len(fs.ModuleFiles("n")); got != 2 {
		t.Errorf("n has %d files after override move, want 2", got)
	}
	if mods := fs.Modules(); len(mods) != 2 || mods[0] != "m" || mods[1] != "n" {
		t.Errorf("modules = %v", mods)
	}

	fs.Remove("m/a.c")
	if mods := fs.Modules(); len(mods) != 1 || mods[0] != "n" {
		t.Errorf("modules after emptying m = %v", mods)
	}
	if fs.ModuleFiles("m") != nil {
		t.Error("empty module shard not dropped")
	}
}
