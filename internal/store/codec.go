// Package store is the persistence subsystem of the assessment service:
// a versioned binary snapshot codec for warm corpus state
// (core.PersistedState), an append-only checksummed delta journal
// (write-ahead log), and a data-directory manager tying the two into
// crash-safe recovery — load the snapshot, replay the journal, tolerate
// a torn tail — with size/count-triggered compaction back into a fresh
// snapshot.
//
// Crash-consistency invariants (see DESIGN.md "Persistence & recovery"):
//
//   - a journal record is fsync'd before the in-memory commit it
//     describes (write-ahead), so every acknowledged delta is on disk;
//   - snapshots are written to a temp file, fsync'd, and atomically
//     renamed, so a crash mid-snapshot leaves the previous one intact;
//   - the journal is truncated only after the snapshot rename, and
//     records are stamped with the snapshot generation they apply to,
//     so records surviving a failed truncation are skipped on replay
//     instead of applying to state they do not describe;
//   - a torn final record (crash mid-append) is detected by length or
//     CRC and dropped; the journal is truncated to the last good record
//     before further appends.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// errCorrupt is wrapped by every decoder-detected inconsistency.
var errCorrupt = errors.New("corrupt data")

// enc is a little append-only byte buffer with the primitive encoders
// the snapshot and journal formats share. All integers are unsigned
// varints; signed values the formats need are non-negative by
// construction and encoded as their uint64 image.
type enc struct {
	buf []byte
}

func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) int(v int)        { e.uvarint(uint64(v)) }
func (e *enc) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}
func (e *enc) string(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) strings(ss []string) {
	e.int(len(ss))
	for _, s := range ss {
		e.string(s)
	}
}

// dec is the matching sticky-error reader: after the first error every
// accessor returns the zero value, and the caller checks err once.
//
// dec reads from a string, not a []byte: string() then returns a
// zero-copy substring of the input. Snapshot decode exploits this by
// converting the raw snapshot to a string once — every decoded path,
// source, and message is a view into that one buffer instead of its
// own allocation, which is most of what snapshot decode used to do.
// The trade-off is pinning: decoded state keeps the whole snapshot
// buffer alive, which is fine for the assessor (the sources it pins
// are the bulk of the buffer and resident anyway).
type dec struct {
	buf string
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", errCorrupt, what, d.off)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	// binary.Uvarint over a string, inlined (the encoding package only
	// reads []byte and converting would copy).
	var v uint64
	for i, s := 0, 0; d.off+i < len(d.buf); i++ {
		b := d.buf[d.off+i]
		if i == 9 && b > 1 {
			break // overflows uint64
		}
		if b < 0x80 {
			d.off += i + 1
			return v | uint64(b)<<s
		}
		v |= uint64(b&0x7f) << s
		s += 7
	}
	d.fail("bad varint")
	return 0
}

// int decodes a non-negative int, guarding against values that cannot
// index or size anything in this process.
func (d *dec) int() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(maxInt) {
		d.fail("varint out of int range")
		return 0
	}
	return int(v)
}

// length decodes a count/length field and bounds it by the remaining
// buffer so corrupt counts cannot drive huge allocations.
func (d *dec) length() int {
	n := d.int()
	if d.err == nil && n > len(d.buf)-d.off {
		d.fail("length exceeds remaining data")
		return 0
	}
	return n
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("unexpected end")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) string() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	s := d.buf[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) stringsList() []string {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.string()
	}
	return out
}

// done verifies the decoder consumed the buffer exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(d.buf)-d.off)
	}
	return nil
}

const maxInt = int(^uint(0) >> 1)

// crc is the checksum both formats use (IEEE CRC-32, the Go table).
func crc(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

// putU32/getU32 frame fixed-width fields (record headers, checksums).
func putU32(buf []byte, v uint32) { binary.LittleEndian.PutUint32(buf, v) }
func getU32(buf []byte) uint32    { return binary.LittleEndian.Uint32(buf) }
