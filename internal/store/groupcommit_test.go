package store_test

// Group-commit journal tests: Stage/SyncTo semantics, leader/follower
// fsync coalescing, Reset absorbing staged records, and the store-level
// SyncBarrier used by the service's /delta handler.

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/srcfile"
	"repro/internal/store"
)

func openTestJournal(t *testing.T) *store.Journal {
	t.Helper()
	j, _, err := store.OpenJournal(filepath.Join(t.TempDir(), "journal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j
}

func TestJournalStageThenSyncTo(t *testing.T) {
	j := openTestJournal(t)
	for i := 1; i <= 3; i++ {
		seq, err := j.Stage(7, nil, []string{"mod/file.cc"})
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Fatalf("stage %d returned seq %d", i, seq)
		}
	}
	if got := j.Staged(); got != 3 {
		t.Fatalf("Staged() = %d, want 3", got)
	}
	if got := j.Fsyncs(); got != 0 {
		t.Fatalf("staging alone issued %d record fsyncs, want 0", got)
	}
	if err := j.SyncTo(3); err != nil {
		t.Fatal(err)
	}
	if got := j.Fsyncs(); got != 1 {
		t.Fatalf("SyncTo(3) issued %d fsyncs, want 1", got)
	}
	// An already-durable prefix needs no further fsync.
	if err := j.SyncTo(1); err != nil {
		t.Fatal(err)
	}
	if got := j.Fsyncs(); got != 1 {
		t.Fatalf("SyncTo over a durable prefix issued a new fsync (%d total)", got)
	}
	if got := j.Records(); got != 3 {
		t.Fatalf("Records() = %d, want 3", got)
	}
}

func TestJournalGroupCommitCoalesces(t *testing.T) {
	j := openTestJournal(t)
	const n = 8
	seqs := make([]int64, n)
	for i := range seqs {
		seq, err := j.Stage(7, nil, []string{"mod/file.cc"})
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = seq
	}
	// Everything is staged before anyone syncs, so the first SyncTo to
	// win the lock leads a batch covering all n records and every other
	// caller rides it: exactly one fsync.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = j.SyncTo(seqs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("SyncTo(%d): %v", seqs[i], err)
		}
	}
	if got := j.Fsyncs(); got != 1 {
		t.Fatalf("%d concurrent SyncTo over a pre-staged batch issued %d fsyncs, want 1", n, got)
	}
}

func TestJournalConcurrentStageSyncDurable(t *testing.T) {
	j := openTestJournal(t)
	const n = 16
	// Stage calls are serialized (the service holds the corpus write
	// lock); the syncs race freely and group-commit however they land.
	var stageMu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stageMu.Lock()
			seq, err := j.Stage(7, nil, []string{"mod/file.cc"})
			stageMu.Unlock()
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = j.SyncTo(seq)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := j.Records(); got != n {
		t.Fatalf("Records() = %d, want %d", got, n)
	}
	if got := j.Fsyncs(); got < 1 || got > n {
		t.Fatalf("Fsyncs() = %d, want between 1 and %d", got, n)
	}
}

func TestJournalResetAbsorbsStaged(t *testing.T) {
	j := openTestJournal(t)
	for i := 0; i < 2; i++ {
		if _, err := j.Stage(7, nil, []string{"mod/file.cc"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	// The snapshot that triggered the reset absorbed both staged records:
	// their SyncTo is satisfied without any record fsync.
	if err := j.SyncTo(2); err != nil {
		t.Fatal(err)
	}
	if got := j.Fsyncs(); got != 0 {
		t.Fatalf("SyncTo over reset-absorbed records issued %d fsyncs, want 0", got)
	}
	// Staging continues the monotonic sequence past the reset.
	seq, err := j.Stage(7, nil, []string{"mod/file.cc"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("post-reset stage returned seq %d, want 3", seq)
	}
	if err := j.SyncTo(seq); err != nil {
		t.Fatal(err)
	}
	if got, want := j.Fsyncs(), int64(1); got != want {
		t.Fatalf("Fsyncs() = %d, want %d", got, want)
	}
	if got := j.Records(); got != 1 {
		t.Fatalf("Records() = %d after reset+stage, want 1", got)
	}
}

// TestStageSyncBarrierReplay drives the service-shaped sequence at the
// store level — hook stages, barrier syncs after the corpus lock would
// be released — and proves the staged records replay.
func TestStageSyncBarrierReplay(t *testing.T) {
	d, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := d.Corpus("c1")
	if err != nil {
		t.Fatal(err)
	}
	// Before any snapshot exists the barrier is a durable no-op.
	if n, err := cs.SyncBarrier()(); n != 0 || err != nil {
		t.Fatalf("empty-store barrier = (%d, %v), want (0, nil)", n, err)
	}

	a, gen := newWarmAssessor(t, 17)
	if _, err := cs.WriteSnapshot(mustExport(t, a)); err != nil {
		t.Fatal(err)
	}
	a.SetCommitHook(cs.Stage)
	staged := 0
	for staged < 3 {
		mut := gen.Mutate()
		delta := core.Delta{}
		if mut.Kind == corpusgen.MutRemove {
			delta.Removed = []string{mut.Path}
		} else {
			delta.Changed = []*srcfile.File{{Path: mut.Path, Src: mut.Src}}
		}
		res, err := a.ApplyDelta(delta)
		if err != nil {
			t.Fatal(err)
		}
		if res.Parsed+res.Removed == 0 {
			continue // no-op delta: the hook never fired, nothing staged
		}
		staged++
		if n, err := cs.SyncBarrier()(); err != nil {
			t.Fatal(err)
		} else if n < 1 {
			t.Fatalf("barrier after stage reported %d fsyncs, want >= 1", n)
		}
	}
	if got := cs.JournalRecords(); got != staged {
		t.Fatalf("journal holds %d records, want %d", got, staged)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	cs2, _ := d.Corpus("c1")
	rec, info, err := cs2.Recover(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != staged || info.Torn {
		t.Fatalf("recover info = %+v, want %d replayed, not torn", info, staged)
	}
	requireIdentical(t, "stage+barrier replay", a, rec)
	if err := cs2.Close(); err != nil {
		t.Fatal(err)
	}
}
