package store

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/srcfile"
)

// Journal format, version 1.
//
//	magic  "ADJRNL01"                           (8 bytes)
//	record*
//	  length u32 LE   (payload bytes)
//	  crc32  u32 LE   (IEEE, over the payload)
//	  payload [length]byte
//	payload:
//	  op u8 (1 = delta)
//	  gen varint (the snapshot generation the delta applies to)
//	  nChanged varint; per change: path, module, src (strings)
//	  nRemoved varint; per removal: path
//
// Appends write one record with a single write(2) followed by fsync, so
// an acknowledged record is durable and a crash mid-append leaves at
// most one torn record at the physical tail. Replay walks records until
// the first length/CRC violation; a violation at the tail is the
// expected torn-write signature and is reported (not an error), and the
// journal is truncated back to the last good record before any further
// append.
//
// Group commit splits an append into its two halves: Stage issues the
// write(2) (callers serialize stages — the service holds the corpus
// write lock) and SyncTo makes a staged prefix durable with a
// leader/follower fsync batch — the first waiter syncs once on behalf
// of every record staged before its fsync started, and concurrent
// /delta writers therefore coalesce onto one fsync instead of paying
// one each. Durability semantics are unchanged: a record is
// acknowledged only after SyncTo covers it, records are staged in
// commit order so every fsync covers a prefix, and a crash still leaves
// at most a torn suffix of never-acknowledged records. Append remains
// the one-call form (Stage + SyncTo) for single-threaded callers.

const (
	journalMagic     = "ADJRNL01"
	journalRecordHdr = 8
	opDelta          = 1
	// maxJournalRecord bounds a single record (and therefore a decode
	// allocation) at slightly above the service's request-body cap.
	maxJournalRecord = 64 << 20
)

// Journal is an open, append-positioned delta journal. Stage calls must
// be serialized by the caller (records are laid out back to back);
// SyncTo, Reset, and every accessor are safe for concurrent use against
// them — the group-commit state below is guarded by mu.
type Journal struct {
	f    *os.File
	path string

	mu      sync.Mutex
	size    int64 // bytes of magic + valid records
	records int   // valid records on disk
	// staged counts records ever staged through this handle and durable
	// the prefix of them made durable — by a SyncTo fsync, or by a
	// Reset absorbing them into an already-fsync'd snapshot. Both are
	// monotonic (Reset does not rewind them; they number records, not
	// bytes), so a sequence returned by Stage stays meaningful across
	// compactions.
	staged  int64
	durable int64
	// syncing is the in-flight fsync batch, nil when no leader is
	// syncing. Followers wait on done; upTo is the staged sequence the
	// batch covers.
	syncing *syncBatch
	// fsyncs counts the fsyncs issued to make records durable (one per
	// Append; group commit amortizes it below one per record). Header
	// writes and resets are not counted: the metric answers "how many
	// fsyncs did acknowledged deltas cost".
	fsyncs int64
	// metrics, when attached, mirrors stage/fsync activity into the
	// serving layer's registry (nil disables; the instruments are
	// lock-free atomics, recorded under mu only for a consistent read of
	// the field itself).
	metrics *JournalMetrics
}

// SetMetrics attaches (or with nil detaches) observability instruments.
func (j *Journal) SetMetrics(m *JournalMetrics) {
	j.mu.Lock()
	j.metrics = m
	j.mu.Unlock()
}

// syncBatch is one leader fsync and the waiters it covers.
type syncBatch struct {
	done chan struct{}
	upTo int64
	err  error
}

// JournalReplay reports what opening a journal found.
type JournalReplay struct {
	// Records is the number of valid records replayed.
	Records int
	// Torn reports whether a torn (incomplete or corrupt) tail was
	// dropped — the crash-mid-append signature.
	Torn bool
}

// ReadJournal scans the journal at path read-only, replaying every
// valid record through apply (which may be nil) in append order with
// the generation it was appended against, and returns what it found
// plus the valid byte length. A missing journal is an empty one.
// Nothing on disk is modified — inspection tooling (cmd/adstore) uses
// this directly; OpenJournal adds the truncate-and-append positioning
// on top.
func ReadJournal(path string, apply func(gen uint64, changed []*srcfile.File, removed []string) error) (JournalReplay, int64, error) {
	var rep JournalReplay
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return rep, 0, nil
	case err != nil:
		return rep, 0, err
	}
	if len(raw) == 0 {
		return rep, 0, nil
	}
	if len(raw) < len(journalMagic) {
		// A crash during the very first header write leaves a short
		// file that provably holds no complete record: the torn-write
		// case, not corruption — recovery proceeds from the snapshot
		// alone and the header is rewritten before the next append.
		rep.Torn = true
		return rep, 0, nil
	}
	if string(raw[:len(journalMagic)]) != journalMagic {
		return rep, 0, fmt.Errorf("%w: bad journal magic in %s", errCorrupt, path)
	}
	off := len(journalMagic)
	valid := int64(off)
	for off < len(raw) {
		if len(raw)-off < journalRecordHdr {
			rep.Torn = true
			break
		}
		n := int(getU32(raw[off:]))
		sum := getU32(raw[off+4:])
		if n > maxJournalRecord || len(raw)-off-journalRecordHdr < n {
			rep.Torn = true
			break
		}
		payload := raw[off+journalRecordHdr : off+journalRecordHdr+n]
		if crc(payload) != sum {
			rep.Torn = true
			break
		}
		gen, changed, removed, derr := decodeDeltaRecord(payload)
		if derr != nil {
			// A checksummed record that does not decode is not a torn
			// write but a format problem: refuse rather than drop data.
			return rep, valid, fmt.Errorf("journal %s record %d: %w", path, rep.Records+1, derr)
		}
		if apply != nil {
			if aerr := apply(gen, changed, removed); aerr != nil {
				return rep, valid, fmt.Errorf("journal %s record %d: replay: %w", path, rep.Records+1, aerr)
			}
		}
		off += journalRecordHdr + n
		valid = int64(off)
		rep.Records++
	}
	return rep, valid, nil
}

// OpenJournal opens (creating if absent) the journal at path, replaying
// every valid record through apply in append order. A torn tail is
// truncated so subsequent appends extend the last good record. An apply
// error aborts the open.
func OpenJournal(path string, apply func(gen uint64, changed []*srcfile.File, removed []string) error) (*Journal, JournalReplay, error) {
	rep, valid, err := ReadJournal(path, apply)
	if err != nil {
		return nil, rep, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, rep, err
	}
	j := &Journal{f: f, path: path, size: valid, records: rep.Records}
	if valid == 0 {
		if err := j.writeHeader(); err != nil {
			_ = f.Close()
			return nil, rep, err
		}
	} else if rep.Torn {
		// Drop the torn tail before any further append.
		if err := f.Truncate(valid); err != nil {
			_ = f.Close()
			return nil, rep, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, rep, err
		}
	}
	return j, rep, nil
}

func (j *Journal) writeHeader() error {
	if _, err := j.f.WriteAt([]byte(journalMagic), 0); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.mu.Lock()
	j.size = int64(len(journalMagic))
	j.records = 0
	j.mu.Unlock()
	return nil
}

// Append journals one delta (changed files with their resolved modules,
// plus removals) and syncs it to stable storage before returning: the
// one-call Stage + SyncTo for single-threaded callers.
func (j *Journal) Append(gen uint64, changed []*srcfile.File, removed []string) error {
	seq, err := j.Stage(gen, changed, removed)
	if err != nil {
		return err
	}
	return j.SyncTo(seq)
}

// Stage writes one delta record at the tail WITHOUT syncing and returns
// its staged sequence for a later SyncTo. The record is not durable —
// and must not be acknowledged — until SyncTo covers the sequence.
// Callers serialize Stage calls (the service holds the corpus write
// lock across the commit that stages). A delta encoding above the
// replay limit is rejected up front: appending it would succeed but
// replay would misread it as a torn tail and silently truncate it away
// — an explicit error (which aborts the commit, state untouched)
// instead of acknowledged-then-lost data. A failed write likewise
// leaves the tail position unadvanced, so the next stage overwrites any
// partial bytes and replay sees at worst a torn tail.
func (j *Journal) Stage(gen uint64, changed []*srcfile.File, removed []string) (int64, error) {
	payload := encodeDeltaRecord(gen, changed, removed)
	if len(payload) > maxJournalRecord {
		return 0, fmt.Errorf("store: delta record of %d bytes exceeds the %d-byte journal record limit", len(payload), maxJournalRecord)
	}
	rec := make([]byte, journalRecordHdr+len(payload))
	putU32(rec, uint32(len(payload)))
	putU32(rec[4:], crc(payload))
	copy(rec[journalRecordHdr:], payload)
	j.mu.Lock()
	off := j.size
	j.mu.Unlock()
	if _, err := j.f.WriteAt(rec, off); err != nil {
		return 0, err
	}
	j.mu.Lock()
	j.size = off + int64(len(rec))
	j.records++
	j.staged++
	seq := j.staged
	m := j.metrics
	j.mu.Unlock()
	if m != nil {
		m.Staged.Inc()
	}
	return seq, nil
}

// SyncTo blocks until the staged sequence seq is durable, group-
// committing with every other concurrent SyncTo: if an fsync is already
// in flight the caller waits for it, and the first waiter that finds no
// fsync in flight becomes the leader and syncs once on behalf of every
// record staged so far. An error means seq's durability is unknown —
// callers must not acknowledge the record.
func (j *Journal) SyncTo(seq int64) error {
	j.mu.Lock()
	for j.durable < seq {
		if b := j.syncing; b != nil {
			// Follower: wait out the in-flight batch. If it failed and
			// covered us, our durability is unknown; if it covered only
			// earlier records, loop and sync (or wait) again.
			j.mu.Unlock()
			<-b.done
			if b.err != nil && b.upTo >= seq {
				return b.err
			}
			j.mu.Lock()
			continue
		}
		b := &syncBatch{done: make(chan struct{}), upTo: j.staged}
		j.syncing = b
		j.mu.Unlock()
		b.err = j.f.Sync()
		j.mu.Lock()
		j.syncing = nil
		j.fsyncs++
		if m := j.metrics; m != nil {
			m.Fsyncs.Inc()
			if b.err == nil && b.upTo > j.durable {
				m.BatchRecords.Observe(b.upTo - j.durable)
			}
		}
		if b.err == nil && b.upTo > j.durable {
			j.durable = b.upTo
		}
		close(b.done)
		if b.err != nil {
			j.mu.Unlock()
			return b.err
		}
	}
	j.mu.Unlock()
	return nil
}

// Staged returns the sequence of the most recently staged record (0
// before any stage) — the argument a caller passes to SyncTo to cover
// everything it has staged so far.
func (j *Journal) Staged() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.staged
}

// Fsyncs returns the cumulative number of record-durability fsyncs this
// journal handle has issued (never reset, not even by Reset): the
// denominator half of the fsyncs-per-delta load metric is the delta
// count, this is the numerator.
func (j *Journal) Fsyncs() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fsyncs
}

// Reset discards every record (a fresh snapshot absorbed them) and
// syncs the truncation. Every staged record becomes durable by
// absorption — the snapshot that triggered the reset was fsync'd with
// those records' deltas applied — so in-flight SyncTo waiters are
// satisfied even though the records themselves are gone.
func (j *Journal) Reset() error {
	j.mu.Lock()
	j.durable = j.staged
	j.mu.Unlock()
	if err := j.f.Truncate(int64(len(journalMagic))); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.mu.Lock()
	j.size = int64(len(journalMagic))
	j.records = 0
	j.mu.Unlock()
	return nil
}

// Records returns the number of records currently journaled.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Size returns the journal's valid byte size (header + records).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Sync flushes the journal file to stable storage (appends already sync
// record-by-record; this is the belt-and-braces flush on shutdown).
func (j *Journal) Sync() error { return j.f.Sync() }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

func encodeDeltaRecord(gen uint64, changed []*srcfile.File, removed []string) []byte {
	var e enc
	e.byte(opDelta)
	e.uvarint(gen)
	e.int(len(changed))
	for _, f := range changed {
		e.string(f.Path)
		e.string(f.Module)
		e.string(f.Src)
	}
	e.strings(removed)
	return e.buf
}

func decodeDeltaRecord(payload []byte) (gen uint64, changed []*srcfile.File, removed []string, err error) {
	// The copy detaches the decoded strings from the (reusable) record
	// buffer; journal records are delta-sized, so this is cheap.
	d := &dec{buf: string(payload)}
	if op := d.byte(); d.err == nil && op != opDelta {
		return 0, nil, nil, fmt.Errorf("%w: unknown journal op %d", errCorrupt, op)
	}
	gen = d.uvarint()
	n := d.length()
	for i := 0; i < n && d.err == nil; i++ {
		changed = append(changed, &srcfile.File{
			Path:   d.string(),
			Module: d.string(),
			Src:    d.string(),
		})
	}
	removed = d.stringsList()
	if err := d.done(); err != nil {
		return 0, nil, nil, err
	}
	return gen, changed, removed, nil
}
