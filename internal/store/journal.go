package store

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/srcfile"
)

// Journal format, version 1.
//
//	magic  "ADJRNL01"                           (8 bytes)
//	record*
//	  length u32 LE   (payload bytes)
//	  crc32  u32 LE   (IEEE, over the payload)
//	  payload [length]byte
//	payload:
//	  op u8 (1 = delta)
//	  gen varint (the snapshot generation the delta applies to)
//	  nChanged varint; per change: path, module, src (strings)
//	  nRemoved varint; per removal: path
//
// Appends write one record with a single write(2) followed by fsync, so
// an acknowledged record is durable and a crash mid-append leaves at
// most one torn record at the physical tail. Replay walks records until
// the first length/CRC violation; a violation at the tail is the
// expected torn-write signature and is reported (not an error), and the
// journal is truncated back to the last good record before any further
// append.

const (
	journalMagic     = "ADJRNL01"
	journalRecordHdr = 8
	opDelta          = 1
	// maxJournalRecord bounds a single record (and therefore a decode
	// allocation) at slightly above the service's request-body cap.
	maxJournalRecord = 64 << 20
)

// Journal is an open, append-positioned delta journal.
type Journal struct {
	f       *os.File
	path    string
	size    int64 // bytes of magic + valid records
	records int   // valid records on disk
}

// JournalReplay reports what opening a journal found.
type JournalReplay struct {
	// Records is the number of valid records replayed.
	Records int
	// Torn reports whether a torn (incomplete or corrupt) tail was
	// dropped — the crash-mid-append signature.
	Torn bool
}

// ReadJournal scans the journal at path read-only, replaying every
// valid record through apply (which may be nil) in append order with
// the generation it was appended against, and returns what it found
// plus the valid byte length. A missing journal is an empty one.
// Nothing on disk is modified — inspection tooling (cmd/adstore) uses
// this directly; OpenJournal adds the truncate-and-append positioning
// on top.
func ReadJournal(path string, apply func(gen uint64, changed []*srcfile.File, removed []string) error) (JournalReplay, int64, error) {
	var rep JournalReplay
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return rep, 0, nil
	case err != nil:
		return rep, 0, err
	}
	if len(raw) == 0 {
		return rep, 0, nil
	}
	if len(raw) < len(journalMagic) {
		// A crash during the very first header write leaves a short
		// file that provably holds no complete record: the torn-write
		// case, not corruption — recovery proceeds from the snapshot
		// alone and the header is rewritten before the next append.
		rep.Torn = true
		return rep, 0, nil
	}
	if string(raw[:len(journalMagic)]) != journalMagic {
		return rep, 0, fmt.Errorf("%w: bad journal magic in %s", errCorrupt, path)
	}
	off := len(journalMagic)
	valid := int64(off)
	for off < len(raw) {
		if len(raw)-off < journalRecordHdr {
			rep.Torn = true
			break
		}
		n := int(getU32(raw[off:]))
		sum := getU32(raw[off+4:])
		if n > maxJournalRecord || len(raw)-off-journalRecordHdr < n {
			rep.Torn = true
			break
		}
		payload := raw[off+journalRecordHdr : off+journalRecordHdr+n]
		if crc(payload) != sum {
			rep.Torn = true
			break
		}
		gen, changed, removed, derr := decodeDeltaRecord(payload)
		if derr != nil {
			// A checksummed record that does not decode is not a torn
			// write but a format problem: refuse rather than drop data.
			return rep, valid, fmt.Errorf("journal %s record %d: %w", path, rep.Records+1, derr)
		}
		if apply != nil {
			if aerr := apply(gen, changed, removed); aerr != nil {
				return rep, valid, fmt.Errorf("journal %s record %d: replay: %w", path, rep.Records+1, aerr)
			}
		}
		off += journalRecordHdr + n
		valid = int64(off)
		rep.Records++
	}
	return rep, valid, nil
}

// OpenJournal opens (creating if absent) the journal at path, replaying
// every valid record through apply in append order. A torn tail is
// truncated so subsequent appends extend the last good record. An apply
// error aborts the open.
func OpenJournal(path string, apply func(gen uint64, changed []*srcfile.File, removed []string) error) (*Journal, JournalReplay, error) {
	rep, valid, err := ReadJournal(path, apply)
	if err != nil {
		return nil, rep, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, rep, err
	}
	j := &Journal{f: f, path: path, size: valid, records: rep.Records}
	if valid == 0 {
		if err := j.writeHeader(); err != nil {
			_ = f.Close()
			return nil, rep, err
		}
	} else if rep.Torn {
		// Drop the torn tail before any further append.
		if err := f.Truncate(valid); err != nil {
			_ = f.Close()
			return nil, rep, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, rep, err
		}
	}
	return j, rep, nil
}

func (j *Journal) writeHeader() error {
	if _, err := j.f.WriteAt([]byte(journalMagic), 0); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size = int64(len(journalMagic))
	j.records = 0
	return nil
}

// Append journals one delta (changed files with their resolved modules,
// plus removals) and syncs it to stable storage before returning. A
// delta encoding above the replay limit is rejected up front: appending
// it would succeed but replay would misread it as a torn tail and
// silently truncate it away — an explicit error (which aborts the
// commit, state untouched) instead of acknowledged-then-lost data.
func (j *Journal) Append(gen uint64, changed []*srcfile.File, removed []string) error {
	payload := encodeDeltaRecord(gen, changed, removed)
	if len(payload) > maxJournalRecord {
		return fmt.Errorf("store: delta record of %d bytes exceeds the %d-byte journal record limit", len(payload), maxJournalRecord)
	}
	rec := make([]byte, journalRecordHdr+len(payload))
	putU32(rec, uint32(len(payload)))
	putU32(rec[4:], crc(payload))
	copy(rec[journalRecordHdr:], payload)
	if _, err := j.f.WriteAt(rec, j.size); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size += int64(len(rec))
	j.records++
	return nil
}

// Reset discards every record (a fresh snapshot absorbed them) and
// syncs the truncation.
func (j *Journal) Reset() error {
	if err := j.f.Truncate(int64(len(journalMagic))); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size = int64(len(journalMagic))
	j.records = 0
	return nil
}

// Records returns the number of records currently journaled.
func (j *Journal) Records() int { return j.records }

// Size returns the journal's valid byte size (header + records).
func (j *Journal) Size() int64 { return j.size }

// Sync flushes the journal file to stable storage (appends already sync
// record-by-record; this is the belt-and-braces flush on shutdown).
func (j *Journal) Sync() error { return j.f.Sync() }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

func encodeDeltaRecord(gen uint64, changed []*srcfile.File, removed []string) []byte {
	var e enc
	e.byte(opDelta)
	e.uvarint(gen)
	e.int(len(changed))
	for _, f := range changed {
		e.string(f.Path)
		e.string(f.Module)
		e.string(f.Src)
	}
	e.strings(removed)
	return e.buf
}

func decodeDeltaRecord(payload []byte) (gen uint64, changed []*srcfile.File, removed []string, err error) {
	// The copy detaches the decoded strings from the (reusable) record
	// buffer; journal records are delta-sized, so this is cheap.
	d := &dec{buf: string(payload)}
	if op := d.byte(); d.err == nil && op != opDelta {
		return 0, nil, nil, fmt.Errorf("%w: unknown journal op %d", errCorrupt, op)
	}
	gen = d.uvarint()
	n := d.length()
	for i := 0; i < n && d.err == nil; i++ {
		changed = append(changed, &srcfile.File{
			Path:   d.string(),
			Module: d.string(),
			Src:    d.string(),
		})
	}
	removed = d.stringsList()
	if err := d.done(); err != nil {
		return 0, nil, nil, err
	}
	return gen, changed, removed, nil
}
