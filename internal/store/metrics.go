package store

import "repro/internal/obs"

// JournalMetrics carries the store-level instruments the serving layer
// registers and attaches via CorpusStore.SetMetrics. Every field may be
// nil (obs instruments are nil-safe), and a nil *JournalMetrics as a
// whole disables instrumentation — the store never registers metrics
// itself, so embedded uses (tests, adstore, the differential harness)
// pay nothing.
type JournalMetrics struct {
	// Staged counts journal records staged (one per non-empty commit).
	Staged *obs.Counter
	// Fsyncs counts record-durability fsyncs issued (group commit
	// amortizes this below one per record).
	Fsyncs *obs.Counter
	// BatchRecords observes, per fsync, how many staged records that
	// fsync newly made durable — the group-commit batch size.
	BatchRecords *obs.Histogram
}

// SetMetrics attaches (or with nil detaches) journal instruments,
// forwarding to the open journal handle and to any handle the store
// opens later.
func (cs *CorpusStore) SetMetrics(m *JournalMetrics) {
	cs.metrics = m
	if cs.j != nil {
		cs.j.SetMetrics(m)
	}
}
