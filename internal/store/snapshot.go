package store

import (
	"fmt"
	"sort"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/iso26262"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// Snapshot format, version 2.
//
//	magic   "ADSNAP01"                         (8 bytes)
//	version u32 little-endian                  (= 2)
//	section*                                   (one per tag, any order)
//	  tag      u8      ('H', 'D', 'F', 'U', 'R', 'M')
//	  length   u32 LE  (payload bytes)
//	  payload  [length]byte
//	  crc32    u32 LE  (IEEE, over the payload)
//
// Sections: H carries the snapshot generation, the target ASIL, and
// the rule-set fingerprint; F the corpus files (insertion order). The
// remaining state is partitioned by module shard — the same partition
// the artifact index derives from the files — and laid out as
// concatenated per-shard blocks:
//
//	U  per shard: the shard's unit facts in sorted path order;
//	R  per shard: one finding list per path (positional — paths come
//	   from the shard's U block), then one trailing corpus-level block;
//	M  per shard: one metric row per path (positional).
//
// D is the shard directory: for every shard its module, file count,
// memoized export/graph signatures, and the (offset, length) extents
// of its U, R, and M blocks inside those sections, plus the extent of
// the corpus finding block in R. A reader that knows which shards it
// needs decodes the header, the directory, and the files — everything
// else is reachable without scanning: boot is O(header + touched
// shards), and the lazy Snapshot type below decodes each block on
// first touch.
//
// Every section must appear exactly once and is CRC-checked eagerly at
// open, so lazy block decode never reads unchecksummed bytes. Integers
// inside payloads are unsigned varints; strings are length-prefixed
// bytes. Any truncation, bit flip, or trailing garbage fails open (or
// the eager DecodeSnapshot) with a wrapped "corrupt data" error.
//
// The generation is a random nonzero 64-bit tag drawn per snapshot
// write; journal records carry the generation they were appended
// against, and recovery skips records whose generation does not match
// the snapshot's — so a journal that outlives its snapshot (crash or
// I/O failure between the snapshot rename and the journal truncation)
// can never replay onto state it does not describe.

const (
	snapMagic   = "ADSNAP01"
	snapVersion = 2
)

var snapTags = []byte{'H', 'D', 'F', 'U', 'R', 'M'}

// Extent locates one shard's block inside a section payload.
type Extent struct {
	Off int
	Len int
}

// SnapShard is one shard directory entry.
type SnapShard struct {
	// Module is the shard key.
	Module string
	// Files is the number of unit paths (and finding lists, and metric
	// rows) in the shard's blocks.
	Files int
	// HasSigs reports whether the writer persisted the shard's
	// signatures (SigExport, SigGraph below).
	HasSigs bool
	// SigExport and SigGraph are the shard's memoized export and graph
	// signatures at snapshot time (see internal/artifact).
	SigExport uint64
	SigGraph  uint64
	// Units, Findings, Metrics are the shard's block extents inside the
	// U, R, and M section payloads respectively.
	Units    Extent
	Findings Extent
	Metrics  Extent
}

// groupUnits partitions a persisted state's units by module shard —
// the partition the artifact index will derive on restore. Unit order
// inside a group follows st.Units (sorted path order), so each group
// is itself path-sorted.
func groupUnits(st *core.PersistedState) (names []string, groups map[string][]int) {
	modOf := make(map[string]string, len(st.Files))
	for i := range st.Files {
		pf := &st.Files[i]
		f := srcfile.File{Path: pf.Path, Module: pf.Module}
		modOf[pf.Path] = f.ModuleName()
	}
	groups = make(map[string][]int)
	for i := range st.Units {
		m, ok := modOf[st.Units[i].Path]
		if !ok {
			f := srcfile.File{Path: st.Units[i].Path}
			m = f.ModuleName()
		}
		groups[m] = append(groups[m], i)
	}
	names = make([]string, 0, len(groups))
	for m := range groups {
		names = append(names, m)
	}
	sort.Strings(names)
	return names, groups
}

// EncodeSnapshot renders a persisted state into the versioned binary
// snapshot format under the given generation tag.
func EncodeSnapshot(st *core.PersistedState, gen uint64) []byte {
	names, groups := groupUnits(st)

	var h enc
	h.uvarint(gen)
	h.int(int(st.Target))
	h.strings(st.RuleIDs)

	// The files section (sources dominate the snapshot) and the
	// per-shard U/R/M blocks are all independent: encode them on one
	// worker pool, each shard into private buffers, and concatenate the
	// blocks in shard name order below — the same bytes as a sequential
	// encode. Task 0 is the files section; task k+1 is shard k.
	var f enc
	uBufs := make([][]byte, len(names))
	rBufs := make([][]byte, len(names))
	mBufs := make([][]byte, len(names))
	nTasks := len(names) + 1
	par.For(par.Workers(nTasks), nTasks, func(t int) {
		if t == 0 {
			f.int(len(st.Files))
			for i := range st.Files {
				pf := &st.Files[i]
				f.string(pf.Path)
				f.string(pf.Module)
				f.byte(byte(pf.Lang))
				f.string(pf.Src)
			}
			return
		}
		k := t - 1
		var u, r, m enc
		for _, i := range groups[names[k]] {
			uf := &st.Units[i]
			encodeUnit(&u, uf)
			encodeFindings(&r, st.FileFindings[uf.Path])
			encodeMetricRow(&m, st.MetricRows[uf.Path])
		}
		uBufs[k], rBufs[k], mBufs[k] = u.buf, r.buf, m.buf
	})

	// Concatenate the per-shard blocks, recording extents as each lands.
	var u, r, m enc
	uExt := make([]Extent, len(names))
	rExt := make([]Extent, len(names))
	mExt := make([]Extent, len(names))
	for k := range names {
		uExt[k] = Extent{len(u.buf), len(uBufs[k])}
		u.buf = append(u.buf, uBufs[k]...)
		rExt[k] = Extent{len(r.buf), len(rBufs[k])}
		r.buf = append(r.buf, rBufs[k]...)
		mExt[k] = Extent{len(m.buf), len(mBufs[k])}
		m.buf = append(m.buf, mBufs[k]...)
	}
	corpusAt := len(r.buf)
	encodeFindings(&r, st.CorpusFindings)

	var d enc
	d.int(len(names))
	for k, name := range names {
		d.string(name)
		d.int(len(groups[name]))
		sig, ok := st.ShardSigs[name]
		d.bool(ok)
		d.uvarint(sig[0])
		d.uvarint(sig[1])
		d.int(uExt[k].Off)
		d.int(uExt[k].Len)
		d.int(rExt[k].Off)
		d.int(rExt[k].Len)
		d.int(mExt[k].Off)
		d.int(mExt[k].Len)
	}
	d.int(corpusAt)
	d.int(len(r.buf) - corpusAt)

	var out enc
	out.buf = make([]byte, 0, snapshotSizeHint(st))
	out.buf = append(out.buf, snapMagic...)
	var v4 [4]byte
	putU32(v4[:], snapVersion)
	out.buf = append(out.buf, v4[:]...)
	section := func(tag byte, payload []byte) {
		out.byte(tag)
		putU32(v4[:], uint32(len(payload)))
		out.buf = append(out.buf, v4[:]...)
		out.buf = append(out.buf, payload...)
		putU32(v4[:], crc(payload))
		out.buf = append(out.buf, v4[:]...)
	}
	section('H', h.buf)
	section('D', d.buf)
	section('F', f.buf)
	section('U', u.buf)
	section('R', r.buf)
	section('M', m.buf)
	return out.buf
}

// Snapshot is a lazily decoded snapshot: opening one validates every
// section checksum and decodes the header and shard directory, but
// each shard's unit facts, finding lists, and metric rows decode only
// when first asked for. It implements core.StateSource, so
// core.RestoreAssessorFrom can pull shard blocks on first touch.
//
// All decoded strings are zero-copy views into the snapshot buffer;
// holding any of them (the restored corpus does) pins the buffer,
// which is dominated by the sources the corpus needs resident anyway.
type Snapshot struct {
	gen     uint64
	target  iso26262.ASIL
	ruleIDs []string

	// Section payloads as views of the one raw string, plus their
	// absolute offsets in the snapshot (for inspection tooling).
	fRaw, uRaw, rRaw, mRaw     string
	fBase, uBase, rBase, mBase int

	shards []SnapShard
	byMod  map[string]*SnapShard
	corpus Extent

	files     []core.PersistedFile
	filesErr  error
	filesDone bool
}

// OpenSnapshot parses a snapshot's framing: magic, version, section
// checksums, header, and shard directory. No shard block is decoded.
func OpenSnapshot(raw []byte) (*Snapshot, error) {
	if len(raw) < len(snapMagic)+4 {
		return nil, fmt.Errorf("%w: snapshot shorter than its header", errCorrupt)
	}
	if string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", errCorrupt)
	}
	if v := getU32(raw[len(snapMagic):]); v != snapVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d (this build reads %d)", v, snapVersion)
	}
	// One string conversion for the whole buffer: every decoded string
	// below is a zero-copy view into it.
	all := string(raw)
	type section struct {
		payload string
		base    int
	}
	// Walk the framing first (cheap), then verify every section checksum
	// on a worker pool: the eager CRC pass is most of the cost of opening
	// a large snapshot and the sections are independent.
	type rawSection struct {
		tag     byte
		payload []byte
		base    int
		want    uint32
	}
	var raws []rawSection
	sections := make(map[byte]section, len(snapTags))
	off := len(snapMagic) + 4
	for off < len(raw) {
		if len(raw)-off < 1+4 {
			return nil, fmt.Errorf("%w: truncated section header", errCorrupt)
		}
		tag := raw[off]
		n := int(getU32(raw[off+1:]))
		off += 5
		if n < 0 || len(raw)-off < n+4 {
			return nil, fmt.Errorf("%w: truncated section %q", errCorrupt, tag)
		}
		payload := raw[off : off+n]
		base := off
		off += n
		raws = append(raws, rawSection{tag: tag, payload: payload, base: base, want: getU32(raw[off:])})
		off += 4
		if _, dup := sections[tag]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", errCorrupt, tag)
		}
		sections[tag] = section{payload: all[base : base+n], base: base}
	}
	crcErrs := make([]error, len(raws))
	par.For(par.Workers(len(raws)), len(raws), func(i int) {
		if got := crc(raws[i].payload); got != raws[i].want {
			crcErrs[i] = fmt.Errorf("%w: section %q checksum mismatch (%08x != %08x)", errCorrupt, raws[i].tag, got, raws[i].want)
		}
	})
	for _, err := range crcErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, tag := range snapTags {
		if _, ok := sections[tag]; !ok {
			return nil, fmt.Errorf("%w: missing section %q", errCorrupt, tag)
		}
	}

	s := &Snapshot{
		fRaw: sections['F'].payload, fBase: sections['F'].base,
		uRaw: sections['U'].payload, uBase: sections['U'].base,
		rRaw: sections['R'].payload, rBase: sections['R'].base,
		mRaw: sections['M'].payload, mBase: sections['M'].base,
	}

	h := &dec{buf: sections['H'].payload}
	s.gen = h.uvarint()
	s.target = iso26262.ASIL(h.int())
	s.ruleIDs = h.stringsList()
	if err := h.done(); err != nil {
		return nil, fmt.Errorf("snapshot header: %w", err)
	}

	d := &dec{buf: sections['D'].payload}
	n := d.int()
	if d.err == nil && n > len(d.buf) {
		// A shard entry is well over a byte; bound the allocation.
		d.fail("shard count exceeds directory size")
	}
	s.shards = make([]SnapShard, 0, n)
	s.byMod = make(map[string]*SnapShard, n)
	for i := 0; i < n && d.err == nil; i++ {
		sh := SnapShard{
			Module:  d.string(),
			Files:   d.int(),
			HasSigs: d.bool(),
		}
		sh.SigExport = d.uvarint()
		sh.SigGraph = d.uvarint()
		sh.Units = Extent{d.int(), d.int()}
		sh.Findings = Extent{d.int(), d.int()}
		sh.Metrics = Extent{d.int(), d.int()}
		s.shards = append(s.shards, sh)
	}
	s.corpus = Extent{d.int(), d.int()}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot directory: %w", err)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		if prev, dup := s.byMod[sh.Module]; dup && prev != nil {
			return nil, fmt.Errorf("%w: duplicate shard %q in directory", errCorrupt, sh.Module)
		}
		if !extentOK(sh.Units, len(s.uRaw)) || !extentOK(sh.Findings, len(s.rRaw)) || !extentOK(sh.Metrics, len(s.mRaw)) {
			return nil, fmt.Errorf("%w: shard %q extent out of section bounds", errCorrupt, sh.Module)
		}
		s.byMod[sh.Module] = sh
	}
	if !extentOK(s.corpus, len(s.rRaw)) {
		return nil, fmt.Errorf("%w: corpus finding extent out of section bounds", errCorrupt)
	}
	return s, nil
}

func extentOK(e Extent, n int) bool {
	return e.Off >= 0 && e.Len >= 0 && e.Off <= n && e.Len <= n-e.Off
}

// Gen returns the snapshot's generation tag.
func (s *Snapshot) Gen() uint64 { return s.gen }

// Target returns the snapshotted target ASIL.
func (s *Snapshot) Target() iso26262.ASIL { return s.target }

// RuleIDs returns the snapshotted rule-set fingerprint.
func (s *Snapshot) RuleIDs() []string { return s.ruleIDs }

// Directory returns the shard directory (a copy; offsets are relative
// to their section payloads — see SectionBounds for the absolutes).
func (s *Snapshot) Directory() []SnapShard {
	out := make([]SnapShard, len(s.shards))
	copy(out, s.shards)
	return out
}

// CorpusExtent returns the corpus-level finding block's extent inside
// the R section.
func (s *Snapshot) CorpusExtent() Extent { return s.corpus }

// SectionBounds returns the absolute snapshot offset and size of the
// U, R, and M section payloads ('U', 'R', 'M'; zeroes otherwise).
func (s *Snapshot) SectionBounds(tag byte) (base, size int) {
	switch tag {
	case 'F':
		return s.fBase, len(s.fRaw)
	case 'U':
		return s.uBase, len(s.uRaw)
	case 'R':
		return s.rBase, len(s.rRaw)
	case 'M':
		return s.mBase, len(s.mRaw)
	}
	return 0, 0
}

// Files decodes (once) and returns the corpus files.
func (s *Snapshot) Files() ([]core.PersistedFile, error) {
	if s.filesDone {
		return s.files, s.filesErr
	}
	s.filesDone = true
	f := &dec{buf: s.fRaw}
	n := f.length()
	files := make([]core.PersistedFile, 0, n)
	for i := 0; i < n && f.err == nil; i++ {
		files = append(files, core.PersistedFile{
			Path:   f.string(),
			Module: f.string(),
			Lang:   srcfile.Language(f.byte()),
			Src:    f.string(),
		})
	}
	if err := f.done(); err != nil {
		s.filesErr = fmt.Errorf("snapshot files: %w", err)
		return nil, s.filesErr
	}
	s.files = files
	return files, nil
}

// ShardNames lists the directory's modules in directory order (the
// writer sorts them).
func (s *Snapshot) ShardNames() []string {
	out := make([]string, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].Module
	}
	return out
}

// ShardSigs returns a shard's persisted signatures.
func (s *Snapshot) ShardSigs(module string) (export, graph uint64, ok bool) {
	sh := s.byMod[module]
	if sh == nil || !sh.HasSigs {
		return 0, 0, false
	}
	return sh.SigExport, sh.SigGraph, true
}

// ShardUnits decodes one shard's unit facts.
func (s *Snapshot) ShardUnits(module string) ([]artifact.UnitFacts, error) {
	sh := s.byMod[module]
	if sh == nil {
		return nil, fmt.Errorf("%w: no shard %q in the snapshot directory", errCorrupt, module)
	}
	d := &dec{buf: s.uRaw[sh.Units.Off : sh.Units.Off+sh.Units.Len]}
	out := make([]artifact.UnitFacts, 0, sh.Files)
	for i := 0; i < sh.Files && d.err == nil; i++ {
		out = append(out, decodeUnit(d))
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot shard %q units: %w", module, err)
	}
	return out, nil
}

// ShardFindings decodes one shard's finding lists (positional, aligned
// with the shard's unit path order).
func (s *Snapshot) ShardFindings(module string) ([][]rules.Finding, error) {
	sh := s.byMod[module]
	if sh == nil {
		return nil, fmt.Errorf("%w: no shard %q in the snapshot directory", errCorrupt, module)
	}
	d := &dec{buf: s.rRaw[sh.Findings.Off : sh.Findings.Off+sh.Findings.Len]}
	out := make([][]rules.Finding, 0, sh.Files)
	for i := 0; i < sh.Files && d.err == nil; i++ {
		out = append(out, decodeFindings(d))
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot shard %q findings: %w", module, err)
	}
	return out, nil
}

// CorpusFindings decodes the corpus-level finding block.
func (s *Snapshot) CorpusFindings() ([]rules.Finding, error) {
	d := &dec{buf: s.rRaw[s.corpus.Off : s.corpus.Off+s.corpus.Len]}
	out := decodeFindings(d)
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot corpus findings: %w", err)
	}
	return out, nil
}

// ShardMetrics decodes one shard's metric rows against its path list
// (rows are positional on the wire; the caller supplies the shard's
// snapshot-time paths, which core validated against the index).
func (s *Snapshot) ShardMetrics(module string, paths []string) ([]*metrics.FileMetrics, error) {
	sh := s.byMod[module]
	if sh == nil {
		return nil, fmt.Errorf("%w: no shard %q in the snapshot directory", errCorrupt, module)
	}
	if len(paths) != sh.Files {
		return nil, fmt.Errorf("%w: shard %q holds %d rows, asked for %d paths", errCorrupt, module, sh.Files, len(paths))
	}
	d := &dec{buf: s.mRaw[sh.Metrics.Off : sh.Metrics.Off+sh.Metrics.Len]}
	out := make([]*metrics.FileMetrics, 0, sh.Files)
	for i := 0; i < sh.Files && d.err == nil; i++ {
		out = append(out, decodeMetricRow(d, paths[i]))
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot shard %q metrics: %w", module, err)
	}
	return out, nil
}

// State decodes the whole snapshot eagerly into a PersistedState — the
// inspection/dump path and the v1-shaped API (DecodeSnapshot).
func (s *Snapshot) State() (*core.PersistedState, error) {
	files, err := s.Files()
	if err != nil {
		return nil, err
	}
	st := &core.PersistedState{
		Target:       s.target,
		RuleIDs:      s.ruleIDs,
		Files:        files,
		FileFindings: make(map[string][]rules.Finding),
		MetricRows:   make(map[string]*metrics.FileMetrics),
		ShardSigs:    make(map[string][2]uint64, len(s.shards)),
	}
	// Decode the shard blocks on a worker pool — each block is an
	// independent extent — then merge sequentially in directory order so
	// errors surface in the same order a sequential decode reports them.
	type shardState struct {
		ufs   []artifact.UnitFacts
		fss   [][]rules.Finding
		rows  []*metrics.FileMetrics
		paths []string
		err   error
	}
	parts := make([]shardState, len(s.shards))
	par.For(par.Workers(len(s.shards)), len(s.shards), func(i int) {
		sh := &s.shards[i]
		p := &parts[i]
		if p.ufs, p.err = s.ShardUnits(sh.Module); p.err != nil {
			return
		}
		if p.fss, p.err = s.ShardFindings(sh.Module); p.err != nil {
			return
		}
		if len(p.fss) != len(p.ufs) {
			p.err = fmt.Errorf("%w: shard %q has %d units but %d finding lists", errCorrupt, sh.Module, len(p.ufs), len(p.fss))
			return
		}
		p.paths = make([]string, len(p.ufs))
		for k := range p.ufs {
			p.paths[k] = p.ufs[k].Path
		}
		p.rows, p.err = s.ShardMetrics(sh.Module, p.paths)
	})
	for i := range s.shards {
		sh := &s.shards[i]
		p := &parts[i]
		if p.err != nil {
			return nil, p.err
		}
		for k := range p.ufs {
			st.FileFindings[p.paths[k]] = p.fss[k]
			st.MetricRows[p.paths[k]] = p.rows[k]
		}
		st.Units = append(st.Units, p.ufs...)
		if sh.HasSigs {
			st.ShardSigs[sh.Module] = [2]uint64{sh.SigExport, sh.SigGraph}
		}
	}
	// Shard blocks are path-sorted internally but concatenate in module
	// order; restore the global sorted-path invariant.
	sort.Slice(st.Units, func(i, j int) bool { return st.Units[i].Path < st.Units[j].Path })
	cfs, err := s.CorpusFindings()
	if err != nil {
		return nil, err
	}
	st.CorpusFindings = cfs
	return st, nil
}

// DecodeSnapshot parses and validates a snapshot eagerly, returning
// the persisted state it holds and its generation tag.
func DecodeSnapshot(raw []byte) (*core.PersistedState, uint64, error) {
	snap, err := OpenSnapshot(raw)
	if err != nil {
		return nil, 0, err
	}
	st, err := snap.State()
	if err != nil {
		return nil, 0, err
	}
	return st, snap.gen, nil
}

func encodeUnit(e *enc, uf *artifact.UnitFacts) {
	e.string(uf.Path)
	e.int(len(uf.Funcs))
	for k := range uf.Funcs {
		ft := &uf.Funcs[k]
		e.string(ft.Name)
		e.bool(ft.Void)
		e.int(ft.Line)
		e.int(ft.Params)
		e.int(ft.CCN)
		e.int(ft.Returns)
		e.strings(ft.Calls)
	}
	e.strings(uf.Globals)
}

func decodeUnit(d *dec) artifact.UnitFacts {
	uf := artifact.UnitFacts{Path: d.string()}
	nf := d.length()
	if nf > 0 {
		uf.Funcs = make([]artifact.FuncFacts, 0, nf)
	}
	for k := 0; k < nf && d.err == nil; k++ {
		uf.Funcs = append(uf.Funcs, artifact.FuncFacts{
			Name:    d.string(),
			Void:    d.bool(),
			Line:    d.int(),
			Params:  d.int(),
			CCN:     d.int(),
			Returns: d.int(),
			Calls:   d.stringsList(),
		})
	}
	uf.Globals = d.stringsList()
	return uf
}

func encodeFindings(e *enc, fs []rules.Finding) {
	e.int(len(fs))
	for i := range fs {
		fd := &fs[i]
		e.string(fd.RuleID)
		e.byte(byte(fd.Severity))
		e.string(fd.File)
		e.string(fd.Module)
		e.int(fd.Line)
		e.string(fd.Msg)
		e.string(fd.Function)
		e.int(len(fd.Refs))
		for _, ref := range fd.Refs {
			e.int(int(ref.Table))
			e.int(ref.Item)
		}
	}
}

func decodeFindings(d *dec) []rules.Finding {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]rules.Finding, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		fd := rules.Finding{
			RuleID:   d.string(),
			Severity: rules.Severity(d.byte()),
			File:     d.string(),
			Module:   d.string(),
			Line:     d.int(),
			Msg:      d.string(),
			Function: d.string(),
		}
		nr := d.length()
		if nr > 0 {
			fd.Refs = make([]iso26262.Ref, 0, nr)
			for k := 0; k < nr && d.err == nil; k++ {
				fd.Refs = append(fd.Refs, iso26262.Ref{
					Table: iso26262.TableID(d.int()),
					Item:  d.int(),
				})
			}
		}
		out = append(out, fd)
	}
	return out
}

func encodeMetricRow(e *enc, fm *metrics.FileMetrics) {
	e.string(fm.Module)
	e.byte(byte(fm.Lang))
	e.int(fm.LOC)
	e.int(fm.NLOC)
	e.int(len(fm.Functions))
	for _, fn := range fm.Functions {
		e.string(fn.Name)
		e.int(fn.StartLine)
		e.int(fn.EndLine)
		e.int(fn.NLOC)
		e.int(fn.CCN)
		e.int(fn.Params)
		e.int(fn.Returns)
		e.bool(fn.IsKernel)
	}
}

// decodeMetricRow reads one metrics row. The per-function File and
// Module fields are not on the wire: the analysis always derives them
// from the owning file, so they are reconstructed from the row.
func decodeMetricRow(d *dec, path string) *metrics.FileMetrics {
	fm := &metrics.FileMetrics{
		Path:   path,
		Module: d.string(),
		Lang:   srcfile.Language(d.byte()),
		LOC:    d.int(),
		NLOC:   d.int(),
	}
	n := d.length()
	if n > 0 {
		fm.Functions = make([]*metrics.FunctionMetrics, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		fm.Functions = append(fm.Functions, &metrics.FunctionMetrics{
			Name:      d.string(),
			File:      path,
			Module:    fm.Module,
			StartLine: d.int(),
			EndLine:   d.int(),
			NLOC:      d.int(),
			CCN:       d.int(),
			Params:    d.int(),
			Returns:   d.int(),
			IsKernel:  d.bool(),
		})
	}
	return fm
}

// snapshotSizeHint estimates the encoded size (sources dominate).
func snapshotSizeHint(st *core.PersistedState) int {
	n := 1 << 12
	for i := range st.Files {
		n += len(st.Files[i].Src) + len(st.Files[i].Path)*2 + 64
	}
	return n + len(st.CorpusFindings)*64
}
