package store

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/iso26262"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// Snapshot format, version 1.
//
//	magic   "ADSNAP01"                         (8 bytes)
//	version u32 little-endian                  (= 1)
//	section*                                   (one per tag, any order)
//	  tag      u8      ('H', 'F', 'U', 'R', 'M')
//	  length   u32 LE  (payload bytes)
//	  payload  [length]byte
//	  crc32    u32 LE  (IEEE, over the payload)
//
// Sections: H carries the snapshot generation, the target ASIL, and
// the rule-set fingerprint; F the corpus files (insertion order); U the
// per-unit analysis facts (sorted path order); R the per-file and
// corpus finding segments; M the per-file metric rows. Every section
// must appear exactly once. Integers inside payloads are unsigned
// varints; strings are length-prefixed bytes. Any truncation, bit
// flip, or trailing garbage fails decode with a wrapped "corrupt data"
// error.
//
// The generation is a random nonzero 64-bit tag drawn per snapshot
// write; journal records carry the generation they were appended
// against, and recovery skips records whose generation does not match
// the snapshot's — so a journal that outlives its snapshot (crash or
// I/O failure between the snapshot rename and the journal truncation)
// can never replay onto state it does not describe.

const (
	snapMagic   = "ADSNAP01"
	snapVersion = 1
)

var snapTags = []byte{'H', 'F', 'U', 'R', 'M'}

// EncodeSnapshot renders a persisted state into the versioned binary
// snapshot format under the given generation tag.
func EncodeSnapshot(st *core.PersistedState, gen uint64) []byte {
	var out enc
	out.buf = make([]byte, 0, snapshotSizeHint(st))
	out.buf = append(out.buf, snapMagic...)
	var v4 [4]byte
	putU32(v4[:], snapVersion)
	out.buf = append(out.buf, v4[:]...)

	section := func(tag byte, payload []byte) {
		out.byte(tag)
		putU32(v4[:], uint32(len(payload)))
		out.buf = append(out.buf, v4[:]...)
		out.buf = append(out.buf, payload...)
		putU32(v4[:], crc(payload))
		out.buf = append(out.buf, v4[:]...)
	}

	var h enc
	h.uvarint(gen)
	h.int(int(st.Target))
	h.strings(st.RuleIDs)
	section('H', h.buf)

	var f enc
	f.int(len(st.Files))
	for i := range st.Files {
		pf := &st.Files[i]
		f.string(pf.Path)
		f.string(pf.Module)
		f.byte(byte(pf.Lang))
		f.string(pf.Src)
	}
	section('F', f.buf)

	var u enc
	u.int(len(st.Units))
	for i := range st.Units {
		uf := &st.Units[i]
		u.string(uf.Path)
		u.int(len(uf.Funcs))
		for k := range uf.Funcs {
			ft := &uf.Funcs[k]
			u.string(ft.Name)
			u.bool(ft.Void)
			u.int(ft.Line)
			u.int(ft.Params)
			u.int(ft.CCN)
			u.int(ft.Returns)
			u.strings(ft.Calls)
		}
		u.strings(uf.Globals)
	}
	section('U', u.buf)

	var r enc
	r.int(len(st.Units))
	for i := range st.Units {
		p := st.Units[i].Path
		r.string(p)
		encodeFindings(&r, st.FileFindings[p])
	}
	encodeFindings(&r, st.CorpusFindings)
	section('R', r.buf)

	var m enc
	m.int(len(st.Units))
	for i := range st.Units {
		p := st.Units[i].Path
		m.string(p)
		encodeMetricRow(&m, st.MetricRows[p])
	}
	section('M', m.buf)

	return out.buf
}

// DecodeSnapshot parses and validates a snapshot, returning the
// persisted state it holds and its generation tag.
func DecodeSnapshot(raw []byte) (*core.PersistedState, uint64, error) {
	if len(raw) < len(snapMagic)+4 {
		return nil, 0, fmt.Errorf("%w: snapshot shorter than its header", errCorrupt)
	}
	if string(raw[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("%w: bad snapshot magic", errCorrupt)
	}
	if v := getU32(raw[len(snapMagic):]); v != snapVersion {
		return nil, 0, fmt.Errorf("unsupported snapshot version %d (this build reads %d)", v, snapVersion)
	}
	sections := make(map[byte][]byte, len(snapTags))
	off := len(snapMagic) + 4
	for off < len(raw) {
		if len(raw)-off < 1+4 {
			return nil, 0, fmt.Errorf("%w: truncated section header", errCorrupt)
		}
		tag := raw[off]
		n := int(getU32(raw[off+1:]))
		off += 5
		if len(raw)-off < n+4 {
			return nil, 0, fmt.Errorf("%w: truncated section %q", errCorrupt, tag)
		}
		payload := raw[off : off+n]
		off += n
		if got, want := crc(payload), getU32(raw[off:]); got != want {
			return nil, 0, fmt.Errorf("%w: section %q checksum mismatch (%08x != %08x)", errCorrupt, tag, got, want)
		}
		off += 4
		if _, dup := sections[tag]; dup {
			return nil, 0, fmt.Errorf("%w: duplicate section %q", errCorrupt, tag)
		}
		sections[tag] = payload
	}
	for _, tag := range snapTags {
		if _, ok := sections[tag]; !ok {
			return nil, 0, fmt.Errorf("%w: missing section %q", errCorrupt, tag)
		}
	}

	st := &core.PersistedState{}

	h := &dec{buf: sections['H']}
	gen := h.uvarint()
	st.Target = iso26262.ASIL(h.int())
	st.RuleIDs = h.stringsList()
	if err := h.done(); err != nil {
		return nil, 0, fmt.Errorf("snapshot header: %w", err)
	}

	f := &dec{buf: sections['F']}
	nFiles := f.length()
	st.Files = make([]core.PersistedFile, 0, nFiles)
	for i := 0; i < nFiles && f.err == nil; i++ {
		st.Files = append(st.Files, core.PersistedFile{
			Path:   f.string(),
			Module: f.string(),
			Lang:   srcfile.Language(f.byte()),
			Src:    f.string(),
		})
	}
	if err := f.done(); err != nil {
		return nil, 0, fmt.Errorf("snapshot files: %w", err)
	}

	u := &dec{buf: sections['U']}
	nUnits := u.length()
	st.Units = make([]artifact.UnitFacts, 0, nUnits)
	for i := 0; i < nUnits && u.err == nil; i++ {
		uf := artifact.UnitFacts{Path: u.string()}
		nf := u.length()
		uf.Funcs = make([]artifact.FuncFacts, 0, nf)
		for k := 0; k < nf && u.err == nil; k++ {
			uf.Funcs = append(uf.Funcs, artifact.FuncFacts{
				Name:    u.string(),
				Void:    u.bool(),
				Line:    u.int(),
				Params:  u.int(),
				CCN:     u.int(),
				Returns: u.int(),
				Calls:   u.stringsList(),
			})
		}
		uf.Globals = u.stringsList()
		st.Units = append(st.Units, uf)
	}
	if err := u.done(); err != nil {
		return nil, 0, fmt.Errorf("snapshot units: %w", err)
	}

	r := &dec{buf: sections['R']}
	nR := r.length()
	st.FileFindings = make(map[string][]rules.Finding, nR)
	for i := 0; i < nR && r.err == nil; i++ {
		p := r.string()
		st.FileFindings[p] = decodeFindings(r)
	}
	st.CorpusFindings = decodeFindings(r)
	if err := r.done(); err != nil {
		return nil, 0, fmt.Errorf("snapshot findings: %w", err)
	}

	m := &dec{buf: sections['M']}
	nM := m.length()
	st.MetricRows = make(map[string]*metrics.FileMetrics, nM)
	for i := 0; i < nM && m.err == nil; i++ {
		p := m.string()
		st.MetricRows[p] = decodeMetricRow(m, p)
	}
	if err := m.done(); err != nil {
		return nil, 0, fmt.Errorf("snapshot metrics: %w", err)
	}
	return st, gen, nil
}

func encodeFindings(e *enc, fs []rules.Finding) {
	e.int(len(fs))
	for i := range fs {
		fd := &fs[i]
		e.string(fd.RuleID)
		e.byte(byte(fd.Severity))
		e.string(fd.File)
		e.string(fd.Module)
		e.int(fd.Line)
		e.string(fd.Msg)
		e.string(fd.Function)
		e.int(len(fd.Refs))
		for _, ref := range fd.Refs {
			e.int(int(ref.Table))
			e.int(ref.Item)
		}
	}
}

func decodeFindings(d *dec) []rules.Finding {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]rules.Finding, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		fd := rules.Finding{
			RuleID:   d.string(),
			Severity: rules.Severity(d.byte()),
			File:     d.string(),
			Module:   d.string(),
			Line:     d.int(),
			Msg:      d.string(),
			Function: d.string(),
		}
		nr := d.length()
		if nr > 0 {
			fd.Refs = make([]iso26262.Ref, 0, nr)
			for k := 0; k < nr && d.err == nil; k++ {
				fd.Refs = append(fd.Refs, iso26262.Ref{
					Table: iso26262.TableID(d.int()),
					Item:  d.int(),
				})
			}
		}
		out = append(out, fd)
	}
	return out
}

func encodeMetricRow(e *enc, fm *metrics.FileMetrics) {
	e.string(fm.Module)
	e.byte(byte(fm.Lang))
	e.int(fm.LOC)
	e.int(fm.NLOC)
	e.int(len(fm.Functions))
	for _, fn := range fm.Functions {
		e.string(fn.Name)
		e.int(fn.StartLine)
		e.int(fn.EndLine)
		e.int(fn.NLOC)
		e.int(fn.CCN)
		e.int(fn.Params)
		e.int(fn.Returns)
		e.bool(fn.IsKernel)
	}
}

// decodeMetricRow reads one metrics row. The per-function File and
// Module fields are not on the wire: the analysis always derives them
// from the owning file, so they are reconstructed from the row.
func decodeMetricRow(d *dec, path string) *metrics.FileMetrics {
	fm := &metrics.FileMetrics{
		Path:   path,
		Module: d.string(),
		Lang:   srcfile.Language(d.byte()),
		LOC:    d.int(),
		NLOC:   d.int(),
	}
	n := d.length()
	if n > 0 {
		fm.Functions = make([]*metrics.FunctionMetrics, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		fm.Functions = append(fm.Functions, &metrics.FunctionMetrics{
			Name:      d.string(),
			File:      path,
			Module:    fm.Module,
			StartLine: d.int(),
			EndLine:   d.int(),
			NLOC:      d.int(),
			CCN:       d.int(),
			Params:    d.int(),
			Returns:   d.int(),
			IsKernel:  d.bool(),
		})
	}
	return fm
}

// snapshotSizeHint estimates the encoded size (sources dominate).
func snapshotSizeHint(st *core.PersistedState) int {
	n := 1 << 12
	for i := range st.Files {
		n += len(st.Files[i].Src) + len(st.Files[i].Path)*2 + 64
	}
	return n + len(st.CorpusFindings)*64
}
