package store

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/core"
	"repro/internal/srcfile"
)

// On-disk layout, one subdirectory per corpus:
//
//	<root>/<corpus>/snapshot   current snapshot (atomic tmp+rename)
//	<root>/<corpus>/journal    append-only delta journal
//	<root>/<corpus>/clean      clean-shutdown marker (empty journal
//	                           certified at the time it was written)

// Options tunes a data directory.
type Options struct {
	// MaxJournalBytes triggers compaction (snapshot + journal reset)
	// once the journal exceeds it; 0 means DefaultMaxJournalBytes.
	MaxJournalBytes int64
	// MaxJournalRecords likewise bounds the record count; 0 means
	// DefaultMaxJournalRecords. Compaction keys on whichever trips
	// first; negative disables that trigger.
	MaxJournalRecords int
}

// Compaction defaults: small enough that replay-on-boot stays a bounded
// fraction of snapshot load, large enough that steady-state deltas
// rarely pay a snapshot write.
const (
	DefaultMaxJournalBytes   = 8 << 20
	DefaultMaxJournalRecords = 1024
)

// corpusNameRE constrains corpus names once they become directory
// names. First character excludes '.' so names cannot traverse or hide.
var corpusNameRE = regexp.MustCompile(`^[A-Za-z0-9_-][A-Za-z0-9._-]{0,63}$`)

// ValidCorpusName reports whether a corpus name is usable as a store
// directory name.
func ValidCorpusName(name string) bool { return corpusNameRE.MatchString(name) }

// Dir manages one data directory holding any number of corpus stores.
type Dir struct {
	root string
	opts Options
}

// Open creates (if needed) and returns a data directory manager.
func Open(root string, opts Options) (*Dir, error) {
	if root == "" {
		return nil, errors.New("store: empty data directory")
	}
	if opts.MaxJournalBytes == 0 {
		opts.MaxJournalBytes = DefaultMaxJournalBytes
	}
	if opts.MaxJournalRecords == 0 {
		opts.MaxJournalRecords = DefaultMaxJournalRecords
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &Dir{root: root, opts: opts}, nil
}

// Root returns the data directory path.
func (d *Dir) Root() string { return d.root }

// Corpora lists the corpus names holding a snapshot, sorted.
func (d *Dir) Corpora() ([]string, error) {
	ents, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, ent := range ents {
		if !ent.IsDir() || !ValidCorpusName(ent.Name()) {
			continue
		}
		if _, err := os.Stat(filepath.Join(d.root, ent.Name(), "snapshot")); err == nil {
			out = append(out, ent.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Corpus opens the store of one corpus, creating its directory.
func (d *Dir) Corpus(name string) (*CorpusStore, error) {
	if !ValidCorpusName(name) {
		return nil, fmt.Errorf("store: corpus name %q is not storable (want %s)", name, corpusNameRE)
	}
	dir := filepath.Join(d.root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &CorpusStore{dir: dir, opts: d.opts}, nil
}

// CorpusStore is the persistent state of one corpus: its current
// snapshot and its delta journal. It is not safe for concurrent use;
// callers (the service) serialize on their per-corpus lock.
type CorpusStore struct {
	dir  string
	opts Options
	j    *Journal
	// gen is the generation tag of the current snapshot (0 = unknown /
	// no snapshot loaded or written yet). Appends stamp it into every
	// record; recovery skips records stamped for another generation.
	gen uint64
	// pendingReset marks a journal reset that failed after its snapshot
	// rename succeeded; retried before the next append. Stale records
	// are inert either way (wrong generation), this is only hygiene.
	pendingReset bool
	// metrics, when attached (SetMetrics), is forwarded to every journal
	// handle this store opens.
	metrics *JournalMetrics
}

func (cs *CorpusStore) snapshotPath() string { return filepath.Join(cs.dir, "snapshot") }
func (cs *CorpusStore) journalPath() string  { return filepath.Join(cs.dir, "journal") }
func (cs *CorpusStore) cleanPath() string    { return filepath.Join(cs.dir, "clean") }

// HasSnapshot reports whether a snapshot exists on disk.
func (cs *CorpusStore) HasSnapshot() bool {
	_, err := os.Stat(cs.snapshotPath())
	return err == nil
}

// newGen draws a random nonzero generation tag.
func newGen() (uint64, error) {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, err
		}
		if g := binary.LittleEndian.Uint64(b[:]); g != 0 {
			return g, nil
		}
	}
}

// WriteSnapshot atomically persists a snapshot under a fresh generation
// and absorbs the journal into it: encode to a temp file, fsync, rename
// over the previous snapshot, fsync the directory, then reset the
// journal. An error implies the previous snapshot+journal pair is still
// authoritative (nothing was installed). Failures after the rename —
// the directory sync or the journal truncation — do not fail the write:
// any surviving journal records carry the superseded generation and are
// skipped on recovery, and the reset is retried before the next append.
// Returns the encoded snapshot size.
func (cs *CorpusStore) WriteSnapshot(st *core.PersistedState) (int64, error) {
	gen, err := newGen()
	if err != nil {
		return 0, err
	}
	raw := EncodeSnapshot(st, gen)
	tmp := cs.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(raw); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, cs.snapshotPath()); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	// The snapshot is installed: from here on the new generation rules,
	// and remaining steps are best-effort hygiene.
	cs.gen = gen
	_ = syncDir(cs.dir)
	cs.pendingReset = cs.resetJournal() != nil
	return int64(len(raw)), nil
}

// resetJournal truncates the journal (open handle or offline).
func (cs *CorpusStore) resetJournal() error {
	if cs.j != nil {
		return cs.j.Reset()
	}
	if _, err := os.Stat(cs.journalPath()); err != nil {
		return nil // nothing to reset
	}
	j, _, err := OpenJournal(cs.journalPath(), nil)
	if err != nil {
		return err
	}
	if err := j.Reset(); err != nil {
		_ = j.Close()
		return err
	}
	return j.Close()
}

// LoadSnapshot reads and eagerly decodes the current snapshot,
// remembering its generation for journal appends and replay filtering.
// Recovery goes through OpenCurrent instead (lazy per-shard decode);
// this is the inspection/dump path.
func (cs *CorpusStore) LoadSnapshot() (*core.PersistedState, int64, error) {
	snap, nbytes, err := cs.OpenCurrent()
	if err != nil {
		return nil, 0, err
	}
	st, err := snap.State()
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot %s: %w", cs.snapshotPath(), err)
	}
	return st, nbytes, nil
}

// OpenCurrent opens the current snapshot lazily: framing and checksums
// are validated and the shard directory decoded, but shard blocks are
// left for first touch. Remembers the generation like LoadSnapshot.
func (cs *CorpusStore) OpenCurrent() (*Snapshot, int64, error) {
	raw, err := os.ReadFile(cs.snapshotPath())
	if err != nil {
		return nil, 0, err
	}
	snap, err := OpenSnapshot(raw)
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot %s: %w", cs.snapshotPath(), err)
	}
	cs.gen = snap.Gen()
	return snap, int64(len(raw)), nil
}

// RecoverInfo summarizes a boot-time recovery.
type RecoverInfo struct {
	// SnapshotBytes is the size of the snapshot that seeded the state.
	SnapshotBytes int64
	// Replayed is the number of journal records applied on top.
	Replayed int
	// Stale is the number of records skipped because they carry a
	// superseded snapshot generation (a journal reset that never landed
	// after its snapshot did; the records' effects are already inside
	// the snapshot or were discarded with the corpus they described).
	Stale int
	// Torn reports that a torn journal tail was dropped.
	Torn bool
	// Clean reports that the previous process shut down cleanly (it
	// compacted, left an empty journal, and wrote the marker); a clean
	// boot replays nothing.
	Clean bool
}

// Recover rebuilds a warm assessor from the snapshot plus journal
// replay (torn tail tolerated), leaving the store positioned for
// further appends. The clean-shutdown marker is consumed: it certifies
// only the boot that finds it.
func (cs *CorpusStore) Recover(cfg core.Config) (*core.Assessor, *RecoverInfo, error) {
	snap, nbytes, err := cs.OpenCurrent()
	if err != nil {
		return nil, nil, err
	}
	a, err := core.RestoreAssessorFrom(cfg, snap)
	if err != nil {
		return nil, nil, err
	}
	info := &RecoverInfo{SnapshotBytes: nbytes, Clean: cs.consumeClean()}
	j, rep, err := OpenJournal(cs.journalPath(), cs.replayInto(a, info))
	if err != nil {
		return nil, nil, err
	}
	j.SetMetrics(cs.metrics)
	cs.j = j
	info.Torn = rep.Torn
	if info.Replayed > 0 || info.Torn {
		info.Clean = false
	}
	return a, info, nil
}

// replayInto returns the journal apply callback: records stamped with
// the current snapshot generation apply to the assessor; records from a
// superseded generation are counted stale and skipped.
func (cs *CorpusStore) replayInto(a *core.Assessor, info *RecoverInfo) func(gen uint64, changed []*srcfile.File, removed []string) error {
	return func(gen uint64, changed []*srcfile.File, removed []string) error {
		if gen != cs.gen {
			info.Stale++
			return nil
		}
		if _, err := a.ApplyDelta(core.Delta{Changed: changed, Removed: removed}); err != nil {
			return err
		}
		info.Replayed++
		return nil
	}
}

// Append journals one committed delta under the current snapshot
// generation, syncing before return: Stage plus an immediate sync — the
// single-threaded commit hook (the differential harness and tests use
// it directly). The concurrent service stages under its corpus write
// lock and group-commits via SyncBarrier after releasing it.
func (cs *CorpusStore) Append(changed []*srcfile.File, removed []string) error {
	if err := cs.Stage(changed, removed); err != nil {
		return err
	}
	return cs.j.SyncTo(cs.j.Staged())
}

// Stage journals one committed delta under the current snapshot
// generation WITHOUT syncing. It is the natural core.Assessor commit
// hook for the concurrent service: the record hits the OS under the
// corpus write lock (commit order = journal order, so every fsync
// covers a prefix of committed deltas), and the handler makes it
// durable via SyncBarrier before acknowledging. Staging before any
// snapshot exists is an error: a record with no generation to anchor to
// could never replay safely.
func (cs *CorpusStore) Stage(changed []*srcfile.File, removed []string) error {
	if cs.gen == 0 {
		return fmt.Errorf("store: journal append before a snapshot exists in %s", cs.dir)
	}
	if cs.j == nil {
		j, _, err := OpenJournal(cs.journalPath(), nil)
		if err != nil {
			return err
		}
		j.SetMetrics(cs.metrics)
		cs.j = j
	}
	if cs.pendingReset {
		if err := cs.j.Reset(); err != nil {
			return err // stale records still inert; retried next append
		}
		cs.pendingReset = false
	}
	_, err := cs.j.Stage(cs.gen, changed, removed)
	return err
}

// SyncBarrier captures everything staged so far and returns a closure
// that blocks until it is durable, group-committing with concurrent
// barriers, then reports the cumulative fsync count. Callers capture
// the barrier while still holding their corpus lock (pinning the staged
// high-water mark to their own commit) and invoke it after release, so
// the fsync happens outside the lock and concurrent commits coalesce
// onto one fsync. With nothing staged (no journal open) the closure is
// a durable no-op.
func (cs *CorpusStore) SyncBarrier() func() (int64, error) {
	j := cs.j
	if j == nil {
		return func() (int64, error) { return 0, nil }
	}
	seq := j.Staged()
	return func() (int64, error) {
		err := j.SyncTo(seq)
		return j.Fsyncs(), err
	}
}

// ReadJournal scans the corpus's journal read-only (see the package
// function of the same name) — the inspection and crash-simulation
// path: nothing is truncated and no handle is kept.
func (cs *CorpusStore) ReadJournal(apply func(gen uint64, changed []*srcfile.File, removed []string) error) (JournalReplay, int64, error) {
	return ReadJournal(cs.journalPath(), apply)
}

// RecoverReadOnly rebuilds a warm assessor from the snapshot plus a
// read-only journal replay: unlike Recover it neither truncates torn
// tails, consumes the clean marker, nor keeps the journal open. The
// differential harness uses it to audit a live store mid-run.
func (cs *CorpusStore) RecoverReadOnly(cfg core.Config) (*core.Assessor, *RecoverInfo, error) {
	snap, nbytes, err := cs.OpenCurrent()
	if err != nil {
		return nil, nil, err
	}
	a, err := core.RestoreAssessorFrom(cfg, snap)
	if err != nil {
		return nil, nil, err
	}
	info := &RecoverInfo{SnapshotBytes: nbytes}
	rep, _, err := cs.ReadJournal(cs.replayInto(a, info))
	if err != nil {
		return nil, nil, err
	}
	info.Torn = rep.Torn
	return a, info, nil
}

// JournalRecords returns the number of journaled records (0 when the
// journal was never opened).
func (cs *CorpusStore) JournalRecords() int {
	if cs.j == nil {
		return 0
	}
	return cs.j.Records()
}

// JournalBytes returns the journal's valid size in bytes.
func (cs *CorpusStore) JournalBytes() int64 {
	if cs.j == nil {
		return 0
	}
	return cs.j.Size()
}

// Fsyncs returns the cumulative record-durability fsync count of the
// open journal handle (0 when the journal was never opened). Unlike the
// record count it survives compaction resets, so fsyncs ÷ deltas over a
// load run measures how well group commit amortizes.
func (cs *CorpusStore) Fsyncs() int64 {
	if cs.j == nil {
		return 0
	}
	return cs.j.Fsyncs()
}

// ShouldCompact reports whether the journal has outgrown the
// configured thresholds and deserves absorbing into a fresh snapshot.
func (cs *CorpusStore) ShouldCompact() bool {
	if cs.j == nil {
		return false
	}
	if cs.opts.MaxJournalRecords > 0 && cs.j.Records() >= cs.opts.MaxJournalRecords {
		return true
	}
	return cs.opts.MaxJournalBytes > 0 && cs.j.Size() >= cs.opts.MaxJournalBytes
}

// CopyTo duplicates the corpus's on-disk state (snapshot and journal)
// into another corpus store. The differential harness uses it to
// crash-simulate against a scratch copy without touching the live
// store.
func (cs *CorpusStore) CopyTo(dst *CorpusStore) error {
	for _, name := range []string{"snapshot", "journal"} {
		raw, err := os.ReadFile(filepath.Join(cs.dir, name))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst.dir, name), raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// MarkClean records a clean shutdown: callers compact first (so the
// journal is empty) and the marker certifies that the next boot needs
// no replay.
func (cs *CorpusStore) MarkClean() error {
	return os.WriteFile(cs.cleanPath(), []byte("clean\n"), 0o644)
}

// consumeClean reports and removes the clean-shutdown marker.
func (cs *CorpusStore) consumeClean() bool {
	if _, err := os.Stat(cs.cleanPath()); err != nil {
		return false
	}
	return os.Remove(cs.cleanPath()) == nil
}

// Close flushes and closes the journal handle.
func (cs *CorpusStore) Close() error {
	if cs.j == nil {
		return nil
	}
	err := cs.j.Sync()
	if cerr := cs.j.Close(); err == nil {
		err = cerr
	}
	cs.j = nil
	return err
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
