package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/rules"
	"repro/internal/service"
	"repro/internal/srcfile"
	"repro/internal/store"
)

// smallParams keeps store tests fast while still spanning several
// modules (shards), CUDA files, and injected violations.
var smallParams = corpusgen.Params{Modules: 4, FilesPerModule: 5,
	FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}

func newWarmAssessor(t *testing.T, seed int64) (*core.Assessor, *corpusgen.Generator) {
	t.Helper()
	gen := corpusgen.New(smallParams, seed)
	a := core.NewAssessor(core.DefaultConfig())
	if err := a.LoadFileSet(gen.FileSet()); err != nil {
		t.Fatal(err)
	}
	a.Assess()
	return a, gen
}

// canonical renders findings through the service wire projection, the
// byte-space every engine path is compared in.
func canonical(t *testing.T, fs []rules.Finding) []byte {
	t.Helper()
	b, err := json.Marshal(service.FindingRows(fs))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func reportBytes(t *testing.T, a *core.Assessor) []byte {
	t.Helper()
	b, err := json.Marshal(service.BuildReport("c", a))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func shardStatsString(a *core.Assessor) string {
	return fmt.Sprintf("%v", a.ShardStats())
}

// requireIdentical asserts the full observable surface pinned by the
// acceptance criteria: findings, /report, and ShardStats.
func requireIdentical(t *testing.T, what string, want, got *core.Assessor) {
	t.Helper()
	if w, g := canonical(t, want.Findings()), canonical(t, got.Findings()); !bytes.Equal(w, g) {
		t.Fatalf("%s: findings diverge:\nwant %.200s\ngot  %.200s", what, w, g)
	}
	if w, g := reportBytes(t, want), reportBytes(t, got); !bytes.Equal(w, g) {
		t.Fatalf("%s: report diverges:\nwant %.300s\ngot  %.300s", what, w, g)
	}
	if w, g := shardStatsString(want), shardStatsString(got); w != g {
		t.Fatalf("%s: shard stats diverge:\nwant %s\ngot  %s", what, w, g)
	}
}

// coldAssessor re-parses the restored corpus sources from scratch — the
// reference the restored warm state must be byte-identical to.
func coldAssessor(t *testing.T, src *core.Assessor) *core.Assessor {
	t.Helper()
	fs := srcfile.NewFileSet()
	for _, f := range src.FileSet().Files() {
		fs.Add(&srcfile.File{Path: f.Path, Module: f.Module, Lang: f.Lang, Src: f.Src})
	}
	cold := core.NewAssessor(src.Config())
	if err := cold.LoadFileSet(fs); err != nil {
		t.Fatal(err)
	}
	return cold
}

func TestSnapshotRestoreByteIdentical(t *testing.T) {
	a, _ := newWarmAssessor(t, 26262)
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	raw := store.EncodeSnapshot(st, 1)
	st2, _, err := store.DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreAssessor(core.DefaultConfig(), st2)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "restored vs live", a, restored)

	// The restored caches must be warm: a post-restore run re-checks
	// nothing and the stubs were never parsed.
	restored.Findings()
	if n := restored.RuleFilesChecked(); n != 0 {
		t.Fatalf("restored run re-checked %d files, want 0", n)
	}
	restored.Metrics()
	if n := restored.MetricFilesComputed(); n != 0 {
		t.Fatalf("restored run recomputed %d metric rows, want 0", n)
	}
	if n, total := restored.StubUnits(), restored.FileSet().Len(); n != total {
		t.Fatalf("restored assessor parsed %d units eagerly (stubs %d/%d)", total-n, n, total)
	}

	// And byte-identical to a genuinely cold parse of the same tree.
	requireIdentical(t, "restored vs cold", coldAssessor(t, a), restored)
}

func TestSnapshotOfRestoredAssessorRoundTrips(t *testing.T) {
	a, _ := newWarmAssessor(t, 7)
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreAssessor(core.DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the restored (all-stub) assessor and restore again.
	st2, err := restored.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	raw := store.EncodeSnapshot(st2, 2)
	st3, _, err := store.DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	again, err := core.RestoreAssessor(core.DefaultConfig(), st3)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "second-generation restore", a, again)
}

func TestRestoredDeltaStaysWarmAndIdentical(t *testing.T) {
	a, gen := newWarmAssessor(t, 26262)
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreAssessor(core.DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}

	// A content edit that keeps the exported surface: the restored
	// engine must re-check exactly the dirty file, not hydrate the
	// corpus.
	victim := gen.Paths()[len(gen.Paths())/2]
	edit := gen.Source(victim) + "\n// trailing comment\n"
	d := core.Delta{Changed: []*srcfile.File{{Path: victim, Src: edit}}}
	if _, err := restored.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{Path: victim, Src: edit}}}); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "post-delta", a, restored)
	if n := restored.RuleFilesChecked(); n != 1 {
		t.Fatalf("restored delta re-checked %d files, want 1", n)
	}
	if stubs := restored.StubUnits(); stubs != restored.FileSet().Len()-1 {
		t.Fatalf("delta hydrated more than the edited file: %d stubs of %d files",
			stubs, restored.FileSet().Len())
	}
	requireIdentical(t, "post-delta vs cold", coldAssessor(t, a), restored)
}

func TestRestoredEnvironmentInvalidationHydrates(t *testing.T) {
	a, gen := newWarmAssessor(t, 26262)
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreAssessor(core.DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}

	// Adding a file with a fresh global variable changes the cross-file
	// environment signature: every cached per-file entry is dropped and
	// the fused engine re-walks the whole corpus — which on a restored
	// assessor must transparently hydrate every stub, not walk bodyless
	// fabrications.
	add := &srcfile.File{Path: "perception/zz_new_global.cc",
		Src: "int g_store_test_probe = 4;\nint UseProbe() { return g_store_test_probe; }\n"}
	for _, eng := range []*core.Assessor{a, restored} {
		if _, err := eng.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
			Path: add.Path, Src: add.Src}}}); err != nil {
			t.Fatal(err)
		}
	}
	requireIdentical(t, "post-invalidation", a, restored)
	if stubs := restored.StubUnits(); stubs != 0 {
		t.Fatalf("environment invalidation left %d stubs unhydrated", stubs)
	}
	requireIdentical(t, "post-invalidation vs cold", coldAssessor(t, a), restored)
	_ = gen
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a, _ := newWarmAssessor(t, 3)
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	raw := store.EncodeSnapshot(st, 3)

	if _, _, err := store.DecodeSnapshot(raw[:len(raw)/2]); err == nil {
		t.Fatal("truncated snapshot decoded")
	}
	for _, off := range []int{2, len(raw) / 3, len(raw) - 9} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, _, err := store.DecodeSnapshot(bad); err == nil {
			t.Fatalf("bit flip at %d decoded", off)
		}
	}
	bad := append([]byte(nil), raw...)
	putU32Slice(bad, 8, 99) // version field
	if _, _, err := store.DecodeSnapshot(bad); err == nil {
		t.Fatal("future version decoded")
	}
}

func putU32Slice(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

func TestJournalReplayAndTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := d.Corpus("c1")
	if err != nil {
		t.Fatal(err)
	}

	a, gen := newWarmAssessor(t, 11)
	if _, err := cs.WriteSnapshot(mustExport(t, a)); err != nil {
		t.Fatal(err)
	}
	a.SetCommitHook(cs.Append)

	// Journal three deltas against the live assessor.
	var lastGood, beforeLast []byte
	for i := 0; i < 3; i++ {
		mut := gen.Mutate()
		d := core.Delta{}
		if mut.Kind == corpusgen.MutRemove {
			d.Removed = []string{mut.Path}
		} else {
			d.Changed = []*srcfile.File{{Path: mut.Path, Src: mut.Src}}
		}
		if _, err := a.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		beforeLast = lastGood
		lastGood = canonical(t, a.Findings())
	}
	if cs.JournalRecords() != 3 {
		t.Fatalf("journal holds %d records, want 3", cs.JournalRecords())
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	// Full replay reproduces the live state.
	cs2, _ := d.Corpus("c1")
	rec, info, err := cs2.Recover(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 3 || info.Torn || info.Clean {
		t.Fatalf("recover info = %+v, want 3 replayed, not torn, not clean", info)
	}
	requireIdentical(t, "full replay", a, rec)
	if err := cs2.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn tail: chop bytes off the last record; recovery lands on the
	// state after the first two deltas and truncates the tail.
	jpath := filepath.Join(dir, "c1", "journal")
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	cs3, _ := d.Corpus("c1")
	rec3, info3, err := cs3.Recover(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !info3.Torn || info3.Replayed != 2 {
		t.Fatalf("torn recover info = %+v, want torn with 2 replayed", info3)
	}
	if got := canonical(t, rec3.Findings()); !bytes.Equal(got, beforeLast) {
		t.Fatalf("torn-tail recovery diverges from the state at the last good record")
	}
	// The torn bytes are gone: appending works and a further recovery
	// sees exactly the two good records plus the new one.
	if err := cs3.Append(nil, []string{"nonexistent/zz.cc"}); err != nil {
		t.Fatal(err)
	}
	if cs3.JournalRecords() != 3 {
		t.Fatalf("after truncation+append journal holds %d records, want 3", cs3.JournalRecords())
	}
	if err := cs3.Close(); err != nil {
		t.Fatal(err)
	}

	// Garbage appended beyond the valid tail is likewise dropped.
	raw, _ = os.ReadFile(jpath)
	if err := os.WriteFile(jpath, append(raw, 0xde, 0xad, 0xbe), 0o644); err != nil {
		t.Fatal(err)
	}
	cs4, _ := d.Corpus("c1")
	if _, info4, err := cs4.Recover(core.DefaultConfig()); err != nil {
		t.Fatal(err)
	} else if !info4.Torn || info4.Replayed != 3 {
		t.Fatalf("garbage-tail recover info = %+v, want torn with 3 replayed", info4)
	}
	cs4.Close()
}

func mustExport(t *testing.T, a *core.Assessor) *core.PersistedState {
	t.Helper()
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCompactionAndCleanMarker(t *testing.T) {
	dir := t.TempDir()
	d, err := store.Open(dir, store.Options{MaxJournalRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := d.Corpus("c1")
	if err != nil {
		t.Fatal(err)
	}
	a, gen := newWarmAssessor(t, 5)
	if _, err := cs.WriteSnapshot(mustExport(t, a)); err != nil {
		t.Fatal(err)
	}
	a.SetCommitHook(cs.Append)

	mutate := func() {
		mut := gen.Mutate()
		d := core.Delta{}
		if mut.Kind == corpusgen.MutRemove {
			d.Removed = []string{mut.Path}
		} else {
			d.Changed = []*srcfile.File{{Path: mut.Path, Src: mut.Src}}
		}
		if _, err := a.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	mutate()
	if cs.ShouldCompact() {
		t.Fatal("compaction triggered below the record threshold")
	}
	mutate()
	if !cs.ShouldCompact() {
		t.Fatal("compaction did not trigger at the record threshold")
	}
	if _, err := cs.WriteSnapshot(mustExport(t, a)); err != nil {
		t.Fatal(err)
	}
	if cs.JournalRecords() != 0 || cs.ShouldCompact() {
		t.Fatalf("snapshot did not absorb the journal: %d records", cs.JournalRecords())
	}

	// Clean shutdown: compact (already empty), mark, close. The next
	// boot replays nothing and sees the marker — then consumes it.
	if err := cs.MarkClean(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	cs2, _ := d.Corpus("c1")
	rec, info, err := cs2.Recover(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Clean || info.Replayed != 0 || info.Torn {
		t.Fatalf("clean boot info = %+v, want clean with 0 replayed", info)
	}
	requireIdentical(t, "clean boot", a, rec)
	cs2.Close()

	// The marker certifies exactly one boot.
	cs3, _ := d.Corpus("c1")
	if _, info3, err := cs3.Recover(core.DefaultConfig()); err != nil {
		t.Fatal(err)
	} else if info3.Clean {
		t.Fatal("clean marker survived a boot")
	}
	cs3.Close()
}

// TestTornJournalHeaderTolerated pins the first-write crash case: a
// journal shorter than its 8-byte magic provably holds no complete
// record, so recovery must treat it as a torn write (boot from the
// snapshot alone, rewrite the header) rather than refuse as corrupt.
func TestTornJournalHeaderTolerated(t *testing.T) {
	dir := t.TempDir()
	d, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := d.Corpus("c1")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := newWarmAssessor(t, 17)
	if _, err := cs.WriteSnapshot(mustExport(t, a)); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "c1", "journal")
	if err := os.WriteFile(jpath, []byte("ADJR"), 0o644); err != nil {
		t.Fatal(err)
	}
	cs2, _ := d.Corpus("c1")
	rec, info, err := cs2.Recover(core.DefaultConfig())
	if err != nil {
		t.Fatalf("torn journal header refused recovery: %v", err)
	}
	if !info.Torn || info.Replayed != 0 {
		t.Fatalf("recover info = %+v, want torn with 0 replayed", info)
	}
	requireIdentical(t, "torn-header boot", a, rec)
	// The header was rewritten: appends work and replay again.
	if err := cs2.Append([]*srcfile.File{{Path: "perception/new.cc", Src: "int g_th;\n"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := cs2.Close(); err != nil {
		t.Fatal(err)
	}
	cs3, _ := d.Corpus("c1")
	if _, info3, err := cs3.Recover(core.DefaultConfig()); err != nil {
		t.Fatal(err)
	} else if info3.Replayed != 1 || info3.Torn {
		t.Fatalf("post-rewrite recover info = %+v, want 1 replayed", info3)
	}
	cs3.Close()
}

// TestStaleGenerationRecordsSkipped pins the generation guard: a crash
// (or I/O failure) between a snapshot rename and the journal truncation
// leaves records from the superseded generation in the journal, and
// recovery must skip them instead of replaying them onto state they do
// not describe.
func TestStaleGenerationRecordsSkipped(t *testing.T) {
	dir := t.TempDir()
	d, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := d.Corpus("c1")
	if err != nil {
		t.Fatal(err)
	}
	a, gen := newWarmAssessor(t, 13)
	if _, err := cs.WriteSnapshot(mustExport(t, a)); err != nil {
		t.Fatal(err)
	}
	a.SetCommitHook(cs.Append)
	for i := 0; i < 2; i++ {
		mut := gen.Mutate()
		del := core.Delta{}
		if mut.Kind == corpusgen.MutRemove {
			del.Removed = []string{mut.Path}
		} else {
			del.Changed = []*srcfile.File{{Path: mut.Path, Src: mut.Src}}
		}
		if _, err := a.ApplyDelta(del); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn compaction: stash the journal, write a fresh
	// snapshot (absorbing+resetting the journal), then put the old
	// journal — two records stamped with the superseded generation —
	// back as if the truncation never hit the disk.
	jpath := filepath.Join(dir, "c1", "journal")
	oldJournal, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cs2, _ := d.Corpus("c1")
	if _, err := cs2.WriteSnapshot(mustExport(t, a)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, oldJournal, 0o644); err != nil {
		t.Fatal(err)
	}

	cs3, _ := d.Corpus("c1")
	rec, info, err := cs3.Recover(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cs3.Close()
	if info.Stale != 2 || info.Replayed != 0 {
		t.Fatalf("recover info = %+v, want 2 stale / 0 replayed", info)
	}
	requireIdentical(t, "stale-journal recovery", a, rec)
}

// TestCommitHookContract pins the write-ahead hook semantics: a hook
// failure aborts the commit untouched and is classified retryable
// (core.ErrCommitHook), and all-unchanged no-op deltas never reach the
// hook (no empty journal records, no fsync per retry).
func TestCommitHookContract(t *testing.T) {
	a, gen := newWarmAssessor(t, 9)
	before := canonical(t, a.Findings())

	calls := 0
	a.SetCommitHook(func(changed []*srcfile.File, removed []string) error {
		calls++
		return fmt.Errorf("disk on fire")
	})
	victim := gen.Paths()[0]
	_, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
		Path: victim, Src: gen.Source(victim) + "\n// edit\n"}}})
	if err == nil {
		t.Fatal("commit succeeded despite a failing hook")
	}
	if !errors.Is(err, core.ErrCommitHook) {
		t.Fatalf("hook failure not classified as ErrCommitHook: %v", err)
	}
	if calls != 1 {
		t.Fatalf("hook fired %d times, want 1", calls)
	}
	if got := canonical(t, a.Findings()); !bytes.Equal(before, got) {
		t.Fatal("failed commit mutated assessor state")
	}

	// A delta whose content matches the corpus is a no-op: commit
	// proceeds (the hook would fail) and nothing is journaled.
	res, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
		Path: victim, Src: gen.Source(victim)}}})
	if err != nil {
		t.Fatalf("no-op delta failed: %v", err)
	}
	if res.Unchanged != 1 || calls != 1 {
		t.Fatalf("no-op delta reached the hook (res %+v, calls %d)", res, calls)
	}
}

func TestCorpusNameValidation(t *testing.T) {
	d, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "a/b", "a b", "x\x00y"} {
		if _, err := d.Corpus(bad); err == nil {
			t.Errorf("corpus name %q accepted", bad)
		}
	}
	for _, good := range []string{"default", "adfuzz", "c-1", "A.b_c"} {
		if _, err := d.Corpus(good); err != nil {
			t.Errorf("corpus name %q rejected: %v", good, err)
		}
	}
}
