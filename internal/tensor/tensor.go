// Package tensor implements the dense float32 math the YOLO pipeline
// needs on the CPU: GEMM, im2col convolution, bias, activations, and max
// pooling. It is the "highly optimized CPU library" stand-in (ATLAS /
// OpenBLAS role) and the correctness reference for the GPU library models.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor in NCHW layout conventions
// (the dims slice is [N, C, H, W] for 4-D data, [rows, cols] for
// matrices).
type Tensor struct {
	Dims []int
	Data []float32
}

// New allocates a zero tensor with the given dims.
func New(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d", d))
		}
		n *= d
	}
	return &Tensor{Dims: append([]int(nil), dims...), Data: make([]float32, n)}
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// At reads element (i, j) of a 2-D tensor.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.Dims[1]+j] }

// Set writes element (i, j) of a 2-D tensor.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.Dims[1]+j] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Dims...)
	copy(c.Data, t.Data)
	return c
}

// Gemm computes C = alpha*A*B + beta*C for row-major matrices.
// A is MxK, B is KxN, C is MxN. The inner loops are ordered i-k-j for
// cache-friendly access, the same optimization darknet's gemm_nn uses.
func Gemm(alpha float32, a, b *Tensor, beta float32, c *Tensor) {
	m, k := a.Dims[0], a.Dims[1]
	k2, n := b.Dims[0], b.Dims[1]
	if k != k2 || c.Dims[0] != m || c.Dims[1] != n {
		panic(fmt.Sprintf("tensor: gemm shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			m, k, k2, n, c.Dims[0], c.Dims[1]))
	}
	if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			apart := alpha * arow[kk]
			if apart == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += apart * brow[j]
			}
		}
	}
}

// Im2col expands an image [C, H, W] into a [C*K*K, OH*OW] matrix for
// convolution-as-GEMM, with the given kernel size, stride, and padding.
func Im2col(im *Tensor, ksize, stride, pad int) *Tensor {
	c, h, w := im.Dims[0], im.Dims[1], im.Dims[2]
	oh := (h+2*pad-ksize)/stride + 1
	ow := (w+2*pad-ksize)/stride + 1
	col := New(c*ksize*ksize, oh*ow)
	rows := c * ksize * ksize
	for r := 0; r < rows; r++ {
		wOff := r % ksize
		hOff := (r / ksize) % ksize
		cIm := r / ksize / ksize
		for y := 0; y < oh; y++ {
			imRow := hOff + y*stride - pad
			for x := 0; x < ow; x++ {
				imCol := wOff + x*stride - pad
				var v float32
				if imRow >= 0 && imRow < h && imCol >= 0 && imCol < w {
					v = im.Data[(cIm*h+imRow)*w+imCol]
				}
				col.Data[r*(oh*ow)+y*ow+x] = v
			}
		}
	}
	return col
}

// Conv2D performs a 2-D convolution of input [C, H, W] with weights
// [K, C, R, R] via im2col + GEMM, returning [K, OH, OW].
func Conv2D(input, weights *Tensor, stride, pad int) *Tensor {
	k := weights.Dims[0]
	c, r := weights.Dims[1], weights.Dims[2]
	if c != input.Dims[0] {
		panic("tensor: conv channel mismatch")
	}
	oh := (input.Dims[1]+2*pad-r)/stride + 1
	ow := (input.Dims[2]+2*pad-r)/stride + 1
	col := Im2col(input, r, stride, pad)
	wMat := &Tensor{Dims: []int{k, c * r * r}, Data: weights.Data}
	outMat := New(k, oh*ow)
	Gemm(1, wMat, col, 0, outMat)
	return &Tensor{Dims: []int{k, oh, ow}, Data: outMat.Data}
}

// AddBias adds a per-channel bias to a [C, H, W] tensor in place.
func AddBias(t *Tensor, bias []float32) {
	c := t.Dims[0]
	hw := t.Len() / c
	for ch := 0; ch < c; ch++ {
		b := bias[ch]
		seg := t.Data[ch*hw : (ch+1)*hw]
		for i := range seg {
			seg[i] += b
		}
	}
}

// LeakyReLU applies max(0.1x, x) in place (darknet's leaky activation).
func LeakyReLU(t *Tensor) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0.1 * v
		}
	}
}

// Logistic applies the sigmoid in place.
func Logistic(t *Tensor) {
	for i, v := range t.Data {
		t.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// MaxPool2D applies max pooling with the given size, stride, and total
// padding over a [C, H, W] tensor. Padding follows darknet's convention:
// the window origin is shifted by -pad/2 and out-of-image samples are
// ignored, so a size-2 stride-1 pool with pad 1 preserves spatial size.
func MaxPool2D(t *Tensor, size, stride, pad int) *Tensor {
	c, h, w := t.Dims[0], t.Dims[1], t.Dims[2]
	oh := (h+pad-size)/stride + 1
	ow := (w+pad-size)/stride + 1
	out := New(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				max := float32(math.Inf(-1))
				for dy := 0; dy < size; dy++ {
					for dx := 0; dx < size; dx++ {
						iy := y*stride + dy - pad/2
						ix := x*stride + dx - pad/2
						if iy < 0 || iy >= h || ix < 0 || ix >= w {
							continue
						}
						v := t.Data[(ch*h+iy)*w+ix]
						if v > max {
							max = v
						}
					}
				}
				out.Data[(ch*oh+y)*ow+x] = max
			}
		}
	}
	return out
}

// Softmax computes a numerically stable softmax over a flat slice.
func Softmax(x []float32) []float32 {
	out := make([]float32, len(x))
	if len(x) == 0 {
		return out
	}
	max := x[0]
	for _, v := range x {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - max))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}
