package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float32) bool { return math.Abs(float64(a-b)) < 1e-4 }

func TestGemmIdentity(t *testing.T) {
	a := New(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	b := New(3, 3)
	for i := range b.Data {
		b.Data[i] = float32(i)
	}
	c := New(3, 3)
	Gemm(1, a, b, 0, c)
	for i := range c.Data {
		if c.Data[i] != b.Data[i] {
			t.Fatalf("identity gemm: C[%d] = %v, want %v", i, c.Data[i], b.Data[i])
		}
	}
}

func TestGemmKnown(t *testing.T) {
	a := &Tensor{Dims: []int{2, 3}, Data: []float32{1, 2, 3, 4, 5, 6}}
	b := &Tensor{Dims: []int{3, 2}, Data: []float32{7, 8, 9, 10, 11, 12}}
	c := New(2, 2)
	Gemm(1, a, b, 0, c)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Errorf("C[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	a := &Tensor{Dims: []int{1, 1}, Data: []float32{3}}
	b := &Tensor{Dims: []int{1, 1}, Data: []float32{4}}
	c := &Tensor{Dims: []int{1, 1}, Data: []float32{10}}
	Gemm(2, a, b, 0.5, c) // 2*12 + 0.5*10 = 29
	if c.Data[0] != 29 {
		t.Errorf("C = %v, want 29", c.Data[0])
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Gemm(1, New(2, 3), New(4, 2), 0, New(2, 2))
}

func TestIm2colNoPad(t *testing.T) {
	im := &Tensor{Dims: []int{1, 3, 3}, Data: []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}}
	col := Im2col(im, 2, 1, 0)
	// 4 rows (1*2*2), 4 cols (2x2 output).
	if col.Dims[0] != 4 || col.Dims[1] != 4 {
		t.Fatalf("col dims = %v", col.Dims)
	}
	// First row: top-left of each window = 1,2,4,5.
	want := []float32{1, 2, 4, 5}
	for i := range want {
		if col.Data[i] != want[i] {
			t.Errorf("col[0][%d] = %v, want %v", i, col.Data[i], want[i])
		}
	}
}

func TestIm2colPadZeros(t *testing.T) {
	im := &Tensor{Dims: []int{1, 2, 2}, Data: []float32{1, 2, 3, 4}}
	col := Im2col(im, 3, 1, 1)
	if col.Dims[0] != 9 || col.Dims[1] != 4 {
		t.Fatalf("col dims = %v", col.Dims)
	}
	// Row 0 (kernel position (0,0)) touches the zero padding at output (0,0).
	if col.Data[0] != 0 {
		t.Errorf("padded corner = %v, want 0", col.Data[0])
	}
}

func TestConv2DAveraging(t *testing.T) {
	in := New(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = 1
	}
	w := New(1, 1, 2, 2)
	for i := range w.Data {
		w.Data[i] = 0.25
	}
	out := Conv2D(in, w, 1, 0)
	if out.Dims[0] != 1 || out.Dims[1] != 3 || out.Dims[2] != 3 {
		t.Fatalf("out dims = %v", out.Dims)
	}
	for i, v := range out.Data {
		if !almostEq(v, 1) {
			t.Errorf("out[%d] = %v, want 1", i, v)
		}
	}
}

func TestConv2DStride(t *testing.T) {
	in := New(1, 4, 4)
	w := New(2, 1, 2, 2)
	out := Conv2D(in, w, 2, 0)
	if out.Dims[0] != 2 || out.Dims[1] != 2 || out.Dims[2] != 2 {
		t.Errorf("out dims = %v, want [2 2 2]", out.Dims)
	}
}

func TestAddBias(t *testing.T) {
	tns := New(2, 2, 2)
	AddBias(tns, []float32{1, 10})
	if tns.Data[0] != 1 || tns.Data[4] != 10 {
		t.Errorf("bias: %v", tns.Data)
	}
}

func TestLeakyReLU(t *testing.T) {
	tns := &Tensor{Dims: []int{4}, Data: []float32{-1, 0, 1, -10}}
	LeakyReLU(tns)
	want := []float32{-0.1, 0, 1, -1}
	for i := range want {
		if !almostEq(tns.Data[i], want[i]) {
			t.Errorf("leaky[%d] = %v, want %v", i, tns.Data[i], want[i])
		}
	}
}

func TestLogistic(t *testing.T) {
	tns := &Tensor{Dims: []int{1}, Data: []float32{0}}
	Logistic(tns)
	if !almostEq(tns.Data[0], 0.5) {
		t.Errorf("sigmoid(0) = %v", tns.Data[0])
	}
}

func TestMaxPool2D(t *testing.T) {
	in := &Tensor{Dims: []int{1, 2, 2}, Data: []float32{1, 5, 3, 2}}
	out := MaxPool2D(in, 2, 2, 0)
	if out.Len() != 1 || out.Data[0] != 5 {
		t.Errorf("maxpool = %v", out.Data)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	out := Softmax([]float32{1, 2, 3, 4})
	var sum float32
	for _, v := range out {
		sum += v
	}
	if !almostEq(sum, 1) {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(out[3] > out[2] && out[2] > out[1]) {
		t.Errorf("softmax not monotone: %v", out)
	}
}

// Property: GEMM is linear in alpha.
func TestGemmLinearityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := 3 + int(seed%4)
		a, b := New(n, n), New(n, n)
		for i := range a.Data {
			a.Data[i] = float32((int(seed)+i*7)%11) - 5
			b.Data[i] = float32((int(seed)+i*3)%13) - 6
		}
		c1, c2 := New(n, n), New(n, n)
		Gemm(1, a, b, 0, c1)
		Gemm(2, a, b, 0, c2)
		for i := range c1.Data {
			if !almostEq(2*c1.Data[i], c2.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Conv2D via im2col+GEMM matches a direct convolution.
func TestConvMatchesDirectProperty(t *testing.T) {
	f := func(seed uint8) bool {
		in := New(2, 5, 5)
		w := New(3, 2, 3, 3)
		for i := range in.Data {
			in.Data[i] = float32((int(seed)+i*7)%9) - 4
		}
		for i := range w.Data {
			w.Data[i] = float32((int(seed)+i*5)%7) - 3
		}
		got := Conv2D(in, w, 1, 1)
		// Direct reference.
		oh, ow := 5, 5
		for k := 0; k < 3; k++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc float32
					for c := 0; c < 2; c++ {
						for dy := 0; dy < 3; dy++ {
							for dx := 0; dx < 3; dx++ {
								iy, ix := y+dy-1, x+dx-1
								if iy < 0 || iy >= 5 || ix < 0 || ix >= 5 {
									continue
								}
								acc += in.Data[(c*5+iy)*5+ix] * w.Data[((k*2+c)*3+dy)*3+dx]
							}
						}
					}
					if !almostEq(acc, got.Data[(k*5+y)*5+x]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	b := a.Clone()
	b.Data[0] = 7
	if a.Data[0] != 0 {
		t.Error("clone aliases source")
	}
}
