// Package testgen implements coverage-guided test-vector generation — the
// remediation the paper's Observation 10 calls for ("additional test cases
// are required to reach much higher coverage, preferably 100%").
//
// Given a parsed function, the generator instruments it, executes candidate
// argument vectors on the interpreter, and greedily keeps every vector that
// covers a probe (statement, branch outcome, or MC/DC condition pair) no
// earlier vector covered. Candidates mix boundary values with seeded random
// search; custom argument generators cover functions whose parameters are
// correlated (buffer + length pairs).
package testgen

import (
	"fmt"
	"math/rand"

	"repro/internal/ccast"
	"repro/internal/cinterp"
	"repro/internal/coverage"
)

// Options tunes the search.
type Options struct {
	// Budget is the number of candidate vectors to try (default 200).
	Budget int
	// Seed drives the deterministic random search.
	Seed int64
	// ArgGen, when set, produces candidate argument tuples; otherwise
	// arguments are inferred from the parameter types (scalars only).
	ArgGen func(rng *rand.Rand) []cinterp.Value
	// MCDCMode selects the independence-pair analysis for scoring.
	MCDCMode coverage.MCDCMode
}

// Vector is one kept test vector.
type Vector struct {
	Args []cinterp.Value
	// Gain is the number of coverage points this vector newly covered.
	Gain int
}

// Result reports the search outcome.
type Result struct {
	Function string
	Vectors  []Vector
	// Before/After summarize coverage without and with the kept vectors.
	Before *coverage.Summary
	After  *coverage.Summary
	Tried  int
}

// score counts covered points in a summary.
func score(s *coverage.Summary) int {
	return s.StmtCovered + s.BranchCovered + s.CondDemonstrated
}

// total counts all coverable points.
func total(s *coverage.Summary) int {
	return s.StmtTotal + s.BranchTotal + s.CondTotal
}

// Search generates test vectors for the named function defined in units.
func Search(units []*ccast.TranslationUnit, fnName string, opts Options) (*Result, error) {
	if opts.Budget <= 0 {
		opts.Budget = 200
	}
	var target *ccast.FuncDecl
	for _, tu := range units {
		for _, fn := range tu.Funcs() {
			if fn.Name == fnName {
				target = fn
			}
		}
	}
	if target == nil {
		return nil, fmt.Errorf("testgen: function %q not defined", fnName)
	}
	argGen := opts.ArgGen
	if argGen == nil {
		var err error
		argGen, err = inferArgGen(target)
		if err != nil {
			return nil, err
		}
	}

	fc := coverage.Instrument(target, fnName)
	m := cinterp.NewMachine(units...)
	m.Hooks = fc.Hooks()

	res := &Result{Function: fnName, Before: fc.Summarize(opts.MCDCMode)}
	rng := rand.New(rand.NewSource(opts.Seed))
	best := score(res.Before)

	for i := 0; i < opts.Budget; i++ {
		args := argGen(rng)
		m.Reset()
		if _, err := m.Call(cutName(fnName), args...); err != nil {
			// A crashing vector is itself valuable evidence, but for
			// coverage search we simply skip it: partial execution already
			// updated the probes, so re-score below either way.
			_ = err
		}
		res.Tried++
		s := fc.Summarize(opts.MCDCMode)
		if sc := score(s); sc > best {
			res.Vectors = append(res.Vectors, Vector{Args: args, Gain: sc - best})
			best = sc
		}
		if score(s) == total(s) {
			break // full coverage reached
		}
	}
	res.After = fc.Summarize(opts.MCDCMode)
	return res, nil
}

func cutName(qualified string) string {
	for i := len(qualified) - 1; i > 0; i-- {
		if qualified[i] == ':' && qualified[i-1] == ':' {
			return qualified[i+1:]
		}
	}
	return qualified
}

// boundary values favored by the candidate mix.
var intBoundaries = []int64{0, 1, -1, 2, 3, 7, 8, 16, 42, 100, 101, -100, 1000, -1000}
var floatBoundaries = []float64{0, 1, -1, 0.5, -0.5, 2, 10, -10, 1000, -1000, 1e6}

// inferArgGen builds a generator from scalar parameter types. Pointer
// parameters make the function ineligible for automatic inference (the
// caller must supply ArgGen with correctly sized buffers).
func inferArgGen(fn *ccast.FuncDecl) (func(*rand.Rand) []cinterp.Value, error) {
	kinds := make([]byte, len(fn.Params))
	for i, p := range fn.Params {
		if p.Type.IsPointer() || len(p.Type.ArrayDims) > 0 {
			return nil, fmt.Errorf("testgen: parameter %q of %s is a pointer; supply Options.ArgGen",
				p.Name, fn.Name)
		}
		switch p.Type.Name {
		case "float", "double", "long double":
			kinds[i] = 'f'
		default:
			kinds[i] = 'i'
		}
	}
	return func(rng *rand.Rand) []cinterp.Value {
		args := make([]cinterp.Value, len(kinds))
		for i, k := range kinds {
			if k == 'f' {
				if rng.Intn(2) == 0 {
					args[i] = cinterp.FloatVal(floatBoundaries[rng.Intn(len(floatBoundaries))])
				} else {
					args[i] = cinterp.FloatVal((rng.Float64() - 0.5) * 20)
				}
			} else {
				switch rng.Intn(3) {
				case 0:
					args[i] = cinterp.IntVal(intBoundaries[rng.Intn(len(intBoundaries))])
				case 1:
					args[i] = cinterp.IntVal(int64(rng.Intn(33) - 8))
				default:
					args[i] = cinterp.IntVal(int64(rng.Intn(4001) - 2000))
				}
			}
		}
		return args
	}, nil
}

// FloatBuf builds a pointer argument over a fresh buffer filled by fill.
func FloatBuf(n int, fill func(i int) float64) cinterp.Value {
	blk := make([]cinterp.Value, n)
	for i := range blk {
		blk[i] = cinterp.FloatVal(fill(i))
	}
	return cinterp.PtrVal(blk, 0)
}

// IntBuf builds a pointer argument over a fresh integer buffer.
func IntBuf(n int, fill func(i int) int64) cinterp.Value {
	blk := make([]cinterp.Value, n)
	for i := range blk {
		blk[i] = cinterp.IntVal(fill(i))
	}
	return cinterp.PtrVal(blk, 0)
}
