package testgen

import (
	"math/rand"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/coverage"
	"repro/internal/srcfile"
)

func parse(t *testing.T, src string) []*ccast.TranslationUnit {
	t.Helper()
	f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	return []*ccast.TranslationUnit{tu}
}

func TestSearchReachesFullBranchCoverage(t *testing.T) {
	units := parse(t, `
int classify(int x) {
    if (x < 0) { return -1; }
    if (x == 0) { return 0; }
    if (x > 100) { return 2; }
    return 1;
}`)
	res, err := Search(units, "classify", Options{Budget: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.StmtPct() != 100 {
		t.Errorf("stmt = %.1f%%, want 100", res.After.StmtPct())
	}
	if res.After.BranchPct() != 100 {
		t.Errorf("branch = %.1f%%, want 100", res.After.BranchPct())
	}
	if len(res.Vectors) == 0 || len(res.Vectors) > 8 {
		t.Errorf("kept %d vectors, want a small generating set", len(res.Vectors))
	}
}

func TestSearchSwitchCases(t *testing.T) {
	units := parse(t, `
int dispatch(int op) {
    switch (op) {
    case 0: return 10;
    case 1: return 20;
    case 2: return 30;
    case 7: return 40;
    default: return -1;
    }
}`)
	res, err := Search(units, "dispatch", Options{Budget: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.BranchPct() != 100 {
		t.Errorf("branch = %.1f%%: all case labels should be matched and missed", res.After.BranchPct())
	}
}

func TestSearchImprovesMCDC(t *testing.T) {
	units := parse(t, `
int gate(int a, int b, int c) {
    if ((a > 0 && b > 0) || c > 0) { return 1; }
    return 0;
}`)
	res, err := Search(units, "gate", Options{Budget: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.MCDCPct() < 99 {
		t.Errorf("mcdc = %.1f%%, want 100 for a 3-condition decision", res.After.MCDCPct())
	}
}

func TestSearchMonotoneGain(t *testing.T) {
	units := parse(t, `
int f(int a, int b) {
    if (a > 3) { b++; }
    if (b < -2) { b--; }
    return b;
}`)
	res, err := Search(units, "f", Options{Budget: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vectors {
		if v.Gain <= 0 {
			t.Errorf("kept a vector with no gain: %+v", v)
		}
	}
	if score(res.After) < score(res.Before) {
		t.Error("coverage regressed")
	}
}

func TestSearchUndefinedFunction(t *testing.T) {
	units := parse(t, "int f(int a) { return a; }")
	if _, err := Search(units, "ghost", Options{}); err == nil {
		t.Fatal("expected undefined-function error")
	}
}

func TestSearchPointerParamNeedsArgGen(t *testing.T) {
	units := parse(t, "float sum(float* xs, int n) { float s = 0; for (int i = 0; i < n; i++) { s += xs[i]; } return s; }")
	if _, err := Search(units, "sum", Options{}); err == nil {
		t.Fatal("expected ArgGen-required error")
	}
	// With a custom generator the search works.
	res, err := Search(units, "sum", Options{
		Budget: 50, Seed: 5,
		ArgGen: func(rng *rand.Rand) []cinterp.Value {
			n := rng.Intn(5)
			return []cinterp.Value{
				FloatBuf(8, func(i int) float64 { return float64(i) }),
				cinterp.IntVal(int64(n)),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.BranchPct() != 100 {
		t.Errorf("branch = %.1f%%", res.After.BranchPct())
	}
}

func TestSearchDeterministic(t *testing.T) {
	src := `
int f(int a) {
    if (a == 42) { return 1; }
    if (a < 0) { return 2; }
    return 0;
}`
	a, err := Search(parse(t, src), "f", Options{Budget: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(parse(t, src), "f", Options{Budget: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Vectors) != len(b.Vectors) || a.Tried != b.Tried {
		t.Errorf("nondeterministic search: %d/%d vs %d/%d",
			len(a.Vectors), a.Tried, len(b.Vectors), b.Tried)
	}
}

// TestBoostYoloActivations demonstrates the Observation 10 workflow on the
// real study subject: the bundled drivers leave activate() partially
// covered; the generator closes the gap.
func TestBoostYoloActivations(t *testing.T) {
	fs := apollocorpus.YoloCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	var tus []*ccast.TranslationUnit
	for _, tu := range units {
		tus = append(tus, tu)
	}
	res, err := Search(tus, "activate", Options{Budget: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.BranchPct() != 100 {
		t.Errorf("activate branch coverage = %.1f%%, want 100 (all activation kinds)",
			res.After.BranchPct())
	}
	if res.After.StmtPct() != 100 {
		t.Errorf("activate stmt coverage = %.1f%%", res.After.StmtPct())
	}
}

func TestBuffers(t *testing.T) {
	fb := FloatBuf(3, func(i int) float64 { return float64(i) + 0.5 })
	if fb.Blk[2].AsFloat() != 2.5 {
		t.Error("FloatBuf fill")
	}
	ib := IntBuf(3, func(i int) int64 { return int64(i * 2) })
	if ib.Blk[2].AsInt() != 4 {
		t.Error("IntBuf fill")
	}
}

var _ = coverage.UniqueCause
