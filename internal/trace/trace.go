// Package trace builds the traceability matrix ISO 26262 treats as "a
// fundamental element to link high-level requirements, low-level
// requirements, and analyzes" (paper, Section 1): every assessed table
// topic is linked to the checkers that evidence it, the findings those
// checkers produced, and the command/benchmark that regenerates the
// result.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/iso26262"
	"repro/internal/rules"
)

// Link is one row of the traceability matrix.
type Link struct {
	// Topic is the high-level requirement (a table row of ISO 26262-6).
	Topic iso26262.Topic
	// Rules are the checker IDs evidencing the topic.
	Rules []string
	// Findings is the number of findings across those rules.
	Findings int
	// Regenerate names the command or benchmark reproducing the evidence.
	Regenerate string
}

// regenTargets maps each table to its regeneration entry point.
var regenTargets = map[iso26262.TableID]string{
	iso26262.TableCoding: "cmd/adassess -table 1 · BenchmarkTable1CodingGuidelines",
	iso26262.TableArch:   "cmd/adassess -table 2 · BenchmarkTable2Architecture",
	iso26262.TableUnit:   "cmd/adassess -table 3 · BenchmarkTable3UnitDesign",
}

// Build links every topic of the three assessed tables to the findings.
func Build(findings []rules.Finding) []Link {
	// Invert: ref → set of rule IDs and count.
	type agg struct {
		rules map[string]bool
		count int
	}
	byRef := make(map[iso26262.Ref]*agg)
	for _, f := range findings {
		for _, ref := range f.Refs {
			a := byRef[ref]
			if a == nil {
				a = &agg{rules: make(map[string]bool)}
				byRef[ref] = a
			}
			a.rules[f.RuleID] = true
			a.count++
		}
	}
	var out []Link
	for _, table := range []iso26262.TableID{iso26262.TableCoding, iso26262.TableArch, iso26262.TableUnit} {
		for _, tp := range iso26262.TableTopics(table) {
			l := Link{Topic: tp, Regenerate: regenTargets[table]}
			if a := byRef[iso26262.Ref{Table: table, Item: tp.Item}]; a != nil {
				for r := range a.rules {
					l.Rules = append(l.Rules, r)
				}
				sort.Strings(l.Rules)
				l.Findings = a.count
			}
			out = append(out, l)
		}
	}
	return out
}

// Orphans returns topics with no checker evidence — the traceability gaps
// an assessor must close manually (e.g. "appropriate scheduling
// properties" needs WCET analysis outside static checking).
func Orphans(links []Link) []Link {
	var out []Link
	for _, l := range links {
		if len(l.Rules) == 0 {
			out = append(out, l)
		}
	}
	return out
}

// Render writes the matrix as text.
func Render(w io.Writer, links []Link) {
	cur := iso26262.TableID(-1)
	for _, l := range links {
		if l.Topic.Table != cur {
			cur = l.Topic.Table
			fmt.Fprintf(w, "%s\n", cur)
		}
		ruleList := "—"
		if len(l.Rules) > 0 {
			ruleList = ""
			for i, r := range l.Rules {
				if i > 0 {
					ruleList += ", "
				}
				ruleList += r
			}
		}
		fmt.Fprintf(w, "  %d. %s\n     checkers: %s · findings: %d\n     regenerate: %s\n",
			l.Topic.Item, l.Topic.Name, ruleList, l.Findings, l.Regenerate)
	}
}
