package trace

import (
	"strings"
	"testing"

	"repro/internal/ccparse"
	"repro/internal/iso26262"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

func findingsFrom(t *testing.T, src string) []rules.Finding {
	t.Helper()
	fs := srcfile.NewFileSet()
	fs.AddSource("m/a.c", src)
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	return rules.Run(rules.NewContext(units), rules.DefaultRules())
}

func TestBuildCoversAllTopics(t *testing.T) {
	links := Build(nil)
	if len(links) != 8+7+10 {
		t.Fatalf("links = %d, want 25 (all rows of the three tables)", len(links))
	}
	items := map[iso26262.TableID][]int{}
	for _, l := range links {
		items[l.Topic.Table] = append(items[l.Topic.Table], l.Topic.Item)
	}
	if len(items[iso26262.TableCoding]) != 8 {
		t.Errorf("coding rows = %d", len(items[iso26262.TableCoding]))
	}
}

func TestBuildLinksFindings(t *testing.T) {
	links := Build(findingsFrom(t, `
int g_count;
int f(int a) {
    if (a < 0) goto out;
    return a;
out:
    return -1;
}`))
	var gotoLink, globalLink Link
	for _, l := range links {
		if l.Topic.Table == iso26262.TableUnit && l.Topic.Item == 9 {
			gotoLink = l
		}
		if l.Topic.Table == iso26262.TableUnit && l.Topic.Item == 5 {
			globalLink = l
		}
	}
	if gotoLink.Findings != 1 || len(gotoLink.Rules) != 1 || gotoLink.Rules[0] != "goto" {
		t.Errorf("goto link = %+v", gotoLink)
	}
	if globalLink.Findings == 0 {
		t.Errorf("global link = %+v", globalLink)
	}
	if !strings.Contains(gotoLink.Regenerate, "adassess -table 3") {
		t.Errorf("regenerate = %q", gotoLink.Regenerate)
	}
}

func TestOrphans(t *testing.T) {
	links := Build(findingsFrom(t, "int f(int a) { return a; }"))
	orphans := Orphans(links)
	// A clean snippet evidences almost nothing: most topics are orphaned.
	if len(orphans) < 15 {
		t.Errorf("orphans = %d, want most topics unlinked on clean code", len(orphans))
	}
	// Scheduling (T3.6) is always an orphan for static-only evidence
	// unless thread primitives appear.
	foundSched := false
	for _, o := range orphans {
		if o.Topic.Table == iso26262.TableArch && o.Topic.Item == 6 {
			foundSched = true
		}
	}
	if !foundSched {
		t.Error("scheduling topic should be orphaned without thread primitives")
	}
}

func TestRender(t *testing.T) {
	var sb strings.Builder
	Render(&sb, Build(findingsFrom(t, "float* g_p;")))
	out := sb.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Table 8") {
		t.Errorf("tables missing from render:\n%s", out)
	}
	if !strings.Contains(out, "checkers: —") {
		t.Error("orphan marker missing")
	}
	if !strings.Contains(out, "global-var") {
		t.Error("linked checker missing")
	}
}
