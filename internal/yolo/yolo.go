// Package yolo implements the YOLO-style object detector that drives the
// paper's perception case study: a darknet-like network description, a
// real CPU forward pass over internal/tensor, region-output decoding with
// non-maximum suppression, and per-library inference-time estimation over
// internal/gpusim (Figure 7).
package yolo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/tensor"
)

// LayerKind enumerates supported layer types.
type LayerKind int

// Layer kinds.
const (
	Conv LayerKind = iota
	MaxPool
	Region
)

// String names the kind.
func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case MaxPool:
		return "maxpool"
	default:
		return "region"
	}
}

// Layer is one network layer.
type Layer struct {
	Kind    LayerKind
	Filters int // conv output channels
	Size    int // kernel / pool window
	Stride  int
	Pad     int
}

// Network is a sequential detection network.
type Network struct {
	Name                   string
	InputC, InputH, InputW int
	Layers                 []Layer
	Classes                int
	Boxes                  int // anchor boxes per cell
	Anchors                []float32
}

// TinyYOLO returns the tiny-YOLO-voc topology the perception module's
// camera path uses (416x416 RGB input, 20 classes, 5 anchors).
func TinyYOLO() *Network {
	n := &Network{
		Name: "tiny-yolo-voc", InputC: 3, InputH: 416, InputW: 416,
		Classes: 20, Boxes: 5,
		Anchors: []float32{1.08, 1.19, 3.42, 4.41, 6.63, 11.38, 9.42, 5.11, 16.62, 10.52},
	}
	conv := func(filters, size, stride, pad int) Layer {
		return Layer{Kind: Conv, Filters: filters, Size: size, Stride: stride, Pad: pad}
	}
	pool := func(size, stride, pad int) Layer {
		return Layer{Kind: MaxPool, Size: size, Stride: stride, Pad: pad}
	}
	n.Layers = []Layer{
		conv(16, 3, 1, 1), pool(2, 2, 0),
		conv(32, 3, 1, 1), pool(2, 2, 0),
		conv(64, 3, 1, 1), pool(2, 2, 0),
		conv(128, 3, 1, 1), pool(2, 2, 0),
		conv(256, 3, 1, 1), pool(2, 2, 0),
		conv(512, 3, 1, 1), pool(2, 1, 1),
		conv(1024, 3, 1, 1),
		conv(1024, 3, 1, 1),
		conv(125, 1, 1, 0), // 5 * (20 classes + 5) outputs per cell
		{Kind: Region},
	}
	return n
}

// MicroYOLO returns a scaled-down network for tests and the quickstart
// example: same structural shape, 32x32 input, 3 classes, 2 anchors.
func MicroYOLO() *Network {
	n := &Network{
		Name: "micro-yolo", InputC: 3, InputH: 32, InputW: 32,
		Classes: 3, Boxes: 2,
		Anchors: []float32{1, 1, 3, 3},
	}
	n.Layers = []Layer{
		{Kind: Conv, Filters: 8, Size: 3, Stride: 1, Pad: 1},
		{Kind: MaxPool, Size: 2, Stride: 2},
		{Kind: Conv, Filters: 16, Size: 3, Stride: 1, Pad: 1},
		{Kind: MaxPool, Size: 2, Stride: 2},
		{Kind: Conv, Filters: 16, Size: 1, Stride: 1, Pad: 0}, // 2*(3+5)=16
		{Kind: Region},
	}
	return n
}

// OutShapes returns the (C, H, W) after every layer.
func (n *Network) OutShapes() [][3]int {
	c, h, w := n.InputC, n.InputH, n.InputW
	out := make([][3]int, 0, len(n.Layers))
	for _, l := range n.Layers {
		switch l.Kind {
		case Conv:
			h = (h+2*l.Pad-l.Size)/l.Stride + 1
			w = (w+2*l.Pad-l.Size)/l.Stride + 1
			c = l.Filters
		case MaxPool:
			h = (h+l.Pad-l.Size)/l.Stride + 1
			w = (w+l.Pad-l.Size)/l.Stride + 1
		case Region:
			// shape preserved
		}
		out = append(out, [3]int{c, h, w})
	}
	return out
}

// ConvShapes returns the gpusim workload of every conv layer, in order.
func (n *Network) ConvShapes() []gpusim.ConvShape {
	c, h, w := n.InputC, n.InputH, n.InputW
	var out []gpusim.ConvShape
	for _, l := range n.Layers {
		switch l.Kind {
		case Conv:
			out = append(out, gpusim.ConvShape{
				N: 1, C: c, H: h, W: w, K: l.Filters, R: l.Size,
				Stride: l.Stride, Pad: l.Pad,
			})
			h = (h+2*l.Pad-l.Size)/l.Stride + 1
			w = (w+2*l.Pad-l.Size)/l.Stride + 1
			c = l.Filters
		case MaxPool:
			h = (h+l.Pad-l.Size)/l.Stride + 1
			w = (w+l.Pad-l.Size)/l.Stride + 1
		}
	}
	return out
}

// InferenceTimeMs estimates one forward pass on the given library model.
// Non-conv layers are bandwidth-bound elementwise passes charged at the
// device's memory ceiling.
func (n *Network) InferenceTimeMs(lib *gpusim.Library) float64 {
	total := 0.0
	for _, s := range n.ConvShapes() {
		total += lib.ConvTime(s)
	}
	// Pool/activation traffic: one read+write of every intermediate.
	shapes := n.OutShapes()
	var bytes float64
	for _, s := range shapes {
		bytes += 8 * float64(s[0]) * float64(s[1]) * float64(s[2])
	}
	total += bytes / (lib.Device.MemBWGBs * 1e9) * 1e3
	return total
}

// Weights holds per-conv-layer parameters.
type Weights struct {
	W []*tensor.Tensor // [K, C, R, R] per conv layer
	B [][]float32      // per-channel biases
}

// RandomWeights samples small random weights deterministically.
func (n *Network) RandomWeights(seed int64) *Weights {
	rng := rand.New(rand.NewSource(seed))
	w := &Weights{}
	c := n.InputC
	for _, l := range n.Layers {
		if l.Kind != Conv {
			continue
		}
		t := tensor.New(l.Filters, c, l.Size, l.Size)
		for i := range t.Data {
			t.Data[i] = (rng.Float32() - 0.5) / float32(l.Size*l.Size*c)
		}
		b := make([]float32, l.Filters)
		for i := range b {
			b[i] = (rng.Float32() - 0.5) * 0.1
		}
		w.W = append(w.W, t)
		w.B = append(w.B, b)
		c = l.Filters
	}
	return w
}

// Forward runs the real CPU forward pass; input is [C, H, W]. The final
// region layer output is returned raw ([Boxes*(Classes+5), H, W]).
func (n *Network) Forward(input *tensor.Tensor, w *Weights) (*tensor.Tensor, error) {
	if len(input.Dims) != 3 || input.Dims[0] != n.InputC ||
		input.Dims[1] != n.InputH || input.Dims[2] != n.InputW {
		return nil, fmt.Errorf("yolo: input dims %v, want [%d %d %d]",
			input.Dims, n.InputC, n.InputH, n.InputW)
	}
	cur := input
	ci := 0
	for _, l := range n.Layers {
		switch l.Kind {
		case Conv:
			if ci >= len(w.W) {
				return nil, fmt.Errorf("yolo: missing weights for conv layer %d", ci)
			}
			cur = tensor.Conv2D(cur, w.W[ci], l.Stride, l.Pad)
			tensor.AddBias(cur, w.B[ci])
			if ci < countConv(n)-1 {
				tensor.LeakyReLU(cur)
			}
			ci++
		case MaxPool:
			cur = tensor.MaxPool2D(cur, l.Size, l.Stride, l.Pad)
		case Region:
			// raw output returned to the decoder
		}
	}
	return cur, nil
}

func countConv(n *Network) int {
	c := 0
	for _, l := range n.Layers {
		if l.Kind == Conv {
			c++
		}
	}
	return c
}

// Detection is one decoded box in normalized [0,1] image coordinates.
type Detection struct {
	X, Y, W, H float32
	Conf       float32
	Class      int
}

// DecodeRegion converts raw region-layer output into detections above the
// confidence threshold. The output layout per cell and anchor is
// [tx, ty, tw, th, to, class scores...], channel-major like darknet.
func (n *Network) DecodeRegion(out *tensor.Tensor, thresh float32) []Detection {
	c, gh, gw := out.Dims[0], out.Dims[1], out.Dims[2]
	per := n.Classes + 5
	if c != n.Boxes*per {
		return nil
	}
	sigmoid := func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	}
	var dets []Detection
	at := func(ch, y, x int) float32 { return out.Data[(ch*gh+y)*gw+x] }
	for b := 0; b < n.Boxes; b++ {
		base := b * per
		for y := 0; y < gh; y++ {
			for x := 0; x < gw; x++ {
				objness := sigmoid(at(base+4, y, x))
				if objness < thresh {
					continue
				}
				scores := make([]float32, n.Classes)
				for cl := 0; cl < n.Classes; cl++ {
					scores[cl] = at(base+5+cl, y, x)
				}
				probs := tensor.Softmax(scores)
				bestCl, bestP := 0, float32(0)
				for cl, p := range probs {
					if p > bestP {
						bestCl, bestP = cl, p
					}
				}
				conf := objness * bestP
				if conf < thresh {
					continue
				}
				bx := (float32(x) + sigmoid(at(base, y, x))) / float32(gw)
				by := (float32(y) + sigmoid(at(base+1, y, x))) / float32(gh)
				bw := float32(math.Exp(float64(at(base+2, y, x)))) * n.Anchors[2*b] / float32(gw)
				bh := float32(math.Exp(float64(at(base+3, y, x)))) * n.Anchors[2*b+1] / float32(gh)
				dets = append(dets, Detection{X: bx, Y: by, W: bw, H: bh, Conf: conf, Class: bestCl})
			}
		}
	}
	return dets
}

// IoU computes intersection-over-union of two detections.
func IoU(a, b Detection) float32 {
	l := maxf(a.X-a.W/2, b.X-b.W/2)
	r := minf(a.X+a.W/2, b.X+b.W/2)
	t := maxf(a.Y-a.H/2, b.Y-b.H/2)
	bo := minf(a.Y+a.H/2, b.Y+b.H/2)
	if r <= l || bo <= t {
		return 0
	}
	inter := (r - l) * (bo - t)
	union := a.W*a.H + b.W*b.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// NMS applies per-class non-maximum suppression, keeping the highest
// confidence box among overlaps above the threshold.
func NMS(dets []Detection, iouThresh float32) []Detection {
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Conf > sorted[j].Conf })
	var out []Detection
	for _, d := range sorted {
		keep := true
		for _, k := range out {
			if k.Class == d.Class && IoU(k, d) > iouThresh {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, d)
		}
	}
	return out
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}
