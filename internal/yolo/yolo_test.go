package yolo

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/tensor"
)

func TestTinyYOLOShapes(t *testing.T) {
	n := TinyYOLO()
	shapes := n.OutShapes()
	last := shapes[len(shapes)-1]
	// 416 → five stride-2 pools → 13x13 grid; 125 channels.
	if last != [3]int{125, 13, 13} {
		t.Errorf("final shape = %v, want [125 13 13]", last)
	}
	convs := n.ConvShapes()
	if len(convs) != 9 {
		t.Errorf("conv layers = %d, want 9", len(convs))
	}
	if convs[0].C != 3 || convs[0].K != 16 || convs[0].H != 416 {
		t.Errorf("first conv = %+v", convs[0])
	}
}

func TestMicroYOLOForward(t *testing.T) {
	n := MicroYOLO()
	w := n.RandomWeights(7)
	in := tensor.New(3, 32, 32)
	for i := range in.Data {
		in.Data[i] = float32(i%17) / 17
	}
	out, err := n.Forward(in, w)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dims[0] != 16 || out.Dims[1] != 8 || out.Dims[2] != 8 {
		t.Errorf("out dims = %v, want [16 8 8]", out.Dims)
	}
}

func TestForwardRejectsBadInput(t *testing.T) {
	n := MicroYOLO()
	w := n.RandomWeights(7)
	if _, err := n.Forward(tensor.New(1, 8, 8), w); err == nil {
		t.Error("expected dims error")
	}
}

func TestForwardDeterministic(t *testing.T) {
	n := MicroYOLO()
	w := n.RandomWeights(7)
	in := tensor.New(3, 32, 32)
	in.Fill(0.5)
	a, _ := n.Forward(in.Clone(), w)
	b, _ := n.Forward(in.Clone(), w)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("forward pass not deterministic")
		}
	}
}

func TestDecodeRegionThreshold(t *testing.T) {
	n := MicroYOLO()
	out := tensor.New(16, 4, 4)
	// All-zero logits: objectness sigmoid = 0.5 everywhere.
	dets := n.DecodeRegion(out, 0.9)
	if len(dets) != 0 {
		t.Errorf("high threshold should yield no detections, got %d", len(dets))
	}
	// Boost one cell's objectness for anchor 0.
	out.Data[(4*4+1)*4+2] = 8 // channel 4 (to), y=1, x=2
	dets = n.DecodeRegion(out, 0.3)
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1", len(dets))
	}
	d := dets[0]
	if d.X < 0.5 || d.X > 0.8 || d.Y < 0.25 || d.Y > 0.5 {
		t.Errorf("box center = (%v, %v), want cell (2,1)/4", d.X, d.Y)
	}
}

func TestIoU(t *testing.T) {
	a := Detection{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	if got := IoU(a, a); got < 0.99 {
		t.Errorf("self IoU = %v", got)
	}
	b := Detection{X: 0.9, Y: 0.9, W: 0.1, H: 0.1}
	if got := IoU(a, b); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
}

func TestNMSSuppressesOverlaps(t *testing.T) {
	dets := []Detection{
		{X: 0.5, Y: 0.5, W: 0.2, H: 0.2, Conf: 0.9, Class: 1},
		{X: 0.51, Y: 0.5, W: 0.2, H: 0.2, Conf: 0.8, Class: 1},
		{X: 0.5, Y: 0.5, W: 0.2, H: 0.2, Conf: 0.7, Class: 2}, // other class survives
		{X: 0.1, Y: 0.1, W: 0.1, H: 0.1, Conf: 0.6, Class: 1},
	}
	out := NMS(dets, 0.5)
	if len(out) != 3 {
		t.Fatalf("NMS kept %d, want 3", len(out))
	}
	if out[0].Conf != 0.9 {
		t.Errorf("NMS must keep the highest-confidence box first")
	}
}

func TestInferenceTimeOrdering(t *testing.T) {
	n := TinyYOLO()
	gpu, cpu := gpusim.TitanV(), gpusim.XeonCPU()
	tCuDNN := n.InferenceTimeMs(gpusim.CuDNN(gpu))
	tISAAC := n.InferenceTimeMs(gpusim.ISAAC(gpu))
	tCuBLAS := n.InferenceTimeMs(gpusim.CuBLAS(gpu))
	tCUTLASS := n.InferenceTimeMs(gpusim.CUTLASS(gpu))
	tATLAS := n.InferenceTimeMs(gpusim.ATLAS(cpu))
	tOpenBLAS := n.InferenceTimeMs(gpusim.OpenBLAS(cpu))

	// Figure 7 shape: open GPU libraries competitive with closed ones.
	if rel := tISAAC / tCuDNN; rel < 0.7 || rel > 1.4 {
		t.Errorf("ISAAC/cuDNN inference ratio = %.2f, want 0.7-1.4", rel)
	}
	if rel := tCUTLASS / tCuBLAS; rel < 0.8 || rel > 1.4 {
		t.Errorf("CUTLASS/cuBLAS inference ratio = %.2f, want 0.8-1.4", rel)
	}
	// CPU two orders of magnitude slower.
	for _, tc := range []float64{tATLAS, tOpenBLAS} {
		if ratio := tc / tCuDNN; ratio < 40 {
			t.Errorf("CPU/GPU ratio = %.0fx, want ~two orders of magnitude", ratio)
		}
	}
}

func TestEndToEndDetection(t *testing.T) {
	// Micro pipeline: forward, decode, NMS — must not panic and must be
	// stable across runs.
	n := MicroYOLO()
	w := n.RandomWeights(42)
	in := tensor.New(3, 32, 32)
	for i := range in.Data {
		in.Data[i] = float32((i*31)%255) / 255
	}
	out, err := n.Forward(in, w)
	if err != nil {
		t.Fatal(err)
	}
	dets := NMS(n.DecodeRegion(out, 0.2), 0.45)
	dets2 := NMS(n.DecodeRegion(out, 0.2), 0.45)
	if len(dets) != len(dets2) {
		t.Error("detection pipeline not deterministic")
	}
	for _, d := range dets {
		if d.Class < 0 || d.Class >= n.Classes {
			t.Errorf("class %d out of range", d.Class)
		}
		if d.Conf < 0.2 {
			t.Errorf("confidence %v below threshold", d.Conf)
		}
	}
}
