package repro_test

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/store"
)

// TestLoadSmoke is the sustained-load regression gate: a short adload
// burst against an in-process persistent server must finish with zero
// request errors, must never fsync more than once per delta (the
// group-commit invariant — the pre-fix build sits at exactly 1.0, a
// double-fsync regression shows up above it), and must keep at least
// half the deltas/sec recorded under "load.after" in
// BENCH_pipeline.json. Opt-in via LOAD_SMOKE=1 (CI sets it) so
// ordinary test runs stay fast and un-flaky on loaded machines.
func TestLoadSmoke(t *testing.T) {
	if os.Getenv("LOAD_SMOKE") == "" {
		t.Skip("set LOAD_SMOKE=1 to run the sustained-load regression gate")
	}

	raw, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var bench struct {
		Load struct {
			After struct {
				DeltasPerSec float64 `json:"deltas_per_sec"`
			} `json:"after"`
		} `json:"load"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("parse BENCH_pipeline.json: %v", err)
	}
	baseline := bench.Load.After.DeltasPerSec
	if baseline <= 0 {
		t.Fatal("BENCH_pipeline.json has no load.after.deltas_per_sec baseline")
	}
	floor := baseline / 2

	// The recorded workload at a shorter burst: 1 corpus, 8 workers on
	// disjoint modules, mixed reads. Each attempt needs a fresh server:
	// replaying the same ticket stream against warm state would turn
	// every delta into a journal-free no-op and measure nothing.
	cfg := loadgen.Config{Corpora: 1, Concurrency: 8, Deltas: 200, ReadEvery: 2}
	attempt := func() *loadgen.Result {
		t.Helper()
		d, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		svc, _, err := service.NewWithStore(d)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		defer func() {
			ts.Close()
			_ = svc.Close()
		}()
		if _, err := loadgen.Setup(ts.Client(), ts.URL, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := loadgen.Run(ts.Client(), ts.URL, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// The fsync and error invariants must hold on EVERY attempt; the
	// throughput floor takes the best attempt, since the gate asks "can
	// the machine still do it this fast" and scheduling noise on a
	// shared runner must not fail it.
	best := 0.0
	for i := 0; i < 3; i++ {
		res := attempt()
		t.Logf("attempt %d: %.1f deltas/sec, %.3f fsyncs/delta, %d errors",
			i, res.DeltasPerSec, res.FsyncsPerDelta, res.Errors)
		if res.Errors > 0 {
			t.Fatalf("attempt %d: %d request errors under load", i, res.Errors)
		}
		if res.FsyncsPerDelta > 1.0+1e-9 {
			t.Fatalf("attempt %d: %.3f fsyncs per delta exceeds 1.0: group commit regressed to multiple fsyncs per acked delta",
				i, res.FsyncsPerDelta)
		}
		if res.Fsyncs == 0 {
			t.Fatalf("attempt %d: zero journal fsyncs across %d deltas: the run did not exercise durability",
				i, res.Deltas)
		}
		// The metrics-correctness oracle: on a clean run the server's
		// /statz counters must agree exactly with what the client
		// observed — acked deltas, file operations, fsyncs, and reads.
		if res.Server == nil {
			t.Fatalf("attempt %d: no /statz diff block — server metrics endpoint missing", i)
		}
		if !res.Server.MatchesClient {
			t.Fatalf("attempt %d: server metrics disagree with client: %+v", i, *res.Server)
		}
		if res.DeltasPerSec > best {
			best = res.DeltasPerSec
		}
	}
	if best < floor {
		t.Fatalf("sustained-load throughput regressed: best %.1f deltas/sec is below half the recorded baseline %.1f",
			best, baseline)
	}
}
