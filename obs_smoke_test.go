package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/corpusgen"
	"repro/internal/obs"
	"repro/internal/service"
)

// TestObsSmoke is the observability regression gate, opt-in via
// OBS_SMOKE=1 (CI sets it). It drives the fully instrumented HTTP stack
// — per-endpoint middleware, request spans, phase histograms — on the
// fixed-seed 10k-file corpus (the DELTA_SMOKE workload) and asserts
// two things: a warm 1-file delta THROUGH THE SERVICE stays within the
// same 2x envelope over the core-level baseline recorded in
// BENCH_pipeline.json (so the instrumentation plus HTTP overhead is
// provably in the noise at the millisecond scale deltas run at), and
// the /metrics exposition the run produces parses under the strict
// line-format validator with counters that agree with the traffic.
func TestObsSmoke(t *testing.T) {
	if os.Getenv("OBS_SMOKE") == "" {
		t.Skip("set OBS_SMOKE=1 to run the observability regression gate")
	}

	raw, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var bench struct {
		Sharded struct {
			Delta1File10kNsPerOp float64 `json:"delta_1file_10k_ns_per_op"`
		} `json:"sharded"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("parse BENCH_pipeline.json: %v", err)
	}
	baseline := time.Duration(bench.Sharded.Delta1File10kNsPerOp)
	if baseline <= 0 {
		t.Fatal("BENCH_pipeline.json has no sharded.delta_1file_10k_ns_per_op baseline")
	}

	// The DELTA_SMOKE workload, verbatim, but over HTTP: 20 modules x
	// (499 C++ + 1 CUDA), seed 26262, steady-state edits of one
	// mid-corpus file. In-memory server: the envelope compares against
	// the core-level baseline, so no journal fsync in the loop.
	gen := corpusgen.New(corpusgen.Params{Modules: 20, FilesPerModule: 499,
		FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}, 26262)
	svc := service.New()
	svc.MaxBody = 64 << 20 // the 10k corpus upload exceeds the 16 MiB default
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	files := make(map[string]string, gen.Len())
	for _, p := range gen.Paths() {
		files[p] = gen.Source(p)
	}
	post := func(path string, body interface{}) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		slurp, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %s: %s", path, resp.Status, slurp)
		}
	}
	post("/assess", map[string]interface{}{"corpus": "c1", "files": files})

	victim := gen.Paths()[len(gen.Paths())/2]
	base := gen.Source(victim)
	variant := func(i int) string {
		if i%2 == 0 {
			return base + "\nfloat ScaleProbe(float x, int m) { if (m > 1) { x = x + 1.0f; } return x; }\n"
		}
		return base + "\nfloat ScaleProbe(float x, int m) { while (x > 0.5f * m) { x = x - 1.0f; } return x; }\n"
	}
	apply := func(i int) {
		t.Helper()
		post("/delta", map[string]interface{}{
			"corpus":  "c1",
			"changed": map[string]string{victim: variant(i)},
		})
	}
	for i := 1; i < 6; i++ {
		apply(i)
	}
	deltas := 5
	best := time.Duration(1<<63 - 1)
	for i := 6; i < 18; i++ {
		start := time.Now()
		apply(i)
		deltas++
		if d := time.Since(start); d < best {
			best = d
		}
	}
	limit := 2 * baseline
	t.Logf("warm 1-file delta over instrumented HTTP on 10k files: best %v (core baseline %v, limit %v)",
		best, baseline, limit)
	if best > limit {
		t.Fatalf("instrumented delta latency regressed: best %v exceeds 2x the core baseline %v", best, baseline)
	}

	// The run's exposition must parse under the strict validator and
	// agree with the traffic the loop just generated.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %s", resp.Status)
	}
	if err := obs.ValidateExposition(string(body)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		fmt.Sprintf("adserve_deltas_acked_total %d", deltas),
		fmt.Sprintf(`adserve_requests_total{endpoint="/delta",class="2xx"} %d`, deltas),
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}
