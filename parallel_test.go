package repro_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/service"
	"repro/internal/srcfile"
	"repro/internal/store"
)

// The shard-parallel corpus operations (cold build, snapshot codec,
// restore, batched delta) claim byte-identical results at any worker
// count. These tests pin that claim at GOMAXPROCS 1 (the sequential
// degenerate case), 2, and 8 — Go happily runs more Ps than the machine
// has cores, so the 8-way schedule interleaves even on a single-core
// runner. Under -race (CI runs `go test -race ./...`) they double as
// data-race probes over every parallel join point.

var gomaxprocsLevels = []int{1, 2, 8}

func withGOMAXPROCS(n int, fn func()) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func parallelParams() corpusgen.Params {
	return corpusgen.Params{Modules: 5, FilesPerModule: 4, FuncsPerFile: 3,
		ViolationsPerFile: 2, CUDAFiles: 1}
}

// canonicalState renders an assessor's observable output — the wire-
// projected findings plus the full report — as one byte string, the
// comparison space every other differential check in the repo uses.
func canonicalState(t *testing.T, a *core.Assessor) []byte {
	t.Helper()
	fr, err := json.Marshal(service.FindingRows(a.Findings()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := json.Marshal(service.BuildReport("par", a))
	if err != nil {
		t.Fatal(err)
	}
	return append(append(fr, '\n'), rep...)
}

// TestParallelColdBuildDeterminism: a cold LoadFileSet + Findings +
// Metrics run (parallel shard rebuild, rule segments, metric partials)
// must be byte-identical at every GOMAXPROCS level.
func TestParallelColdBuildDeterminism(t *testing.T) {
	var want []byte
	for _, gmp := range gomaxprocsLevels {
		withGOMAXPROCS(gmp, func() {
			gen := corpusgen.New(parallelParams(), 26262)
			a := core.NewAssessor(core.DefaultConfig())
			if err := a.LoadFileSet(gen.FileSet()); err != nil {
				t.Fatal(err)
			}
			got := canonicalState(t, a)
			if want == nil {
				want = got
				return
			}
			if !bytes.Equal(want, got) {
				t.Errorf("cold build at GOMAXPROCS %d diverges from GOMAXPROCS %d", gmp, gomaxprocsLevels[0])
			}
		})
	}
}

// TestParallelSnapshotDeterminism: the parallel snapshot encoder must
// emit byte-identical images at every GOMAXPROCS level, and the
// parallel open/decode/restore pipeline must reconstruct byte-identical
// assessor state from that image at every level.
func TestParallelSnapshotDeterminism(t *testing.T) {
	gen := corpusgen.New(parallelParams(), 31)
	warm := core.NewAssessor(core.DefaultConfig())
	if err := warm.LoadFileSet(gen.FileSet()); err != nil {
		t.Fatal(err)
	}
	want := canonicalState(t, warm)
	warm.Metrics()
	st, err := warm.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	var image []byte
	for _, gmp := range gomaxprocsLevels {
		withGOMAXPROCS(gmp, func() {
			raw := store.EncodeSnapshot(st, 7)
			if image == nil {
				image = raw
			} else if !bytes.Equal(image, raw) {
				t.Errorf("snapshot encoded at GOMAXPROCS %d differs from GOMAXPROCS %d", gmp, gomaxprocsLevels[0])
			}
		})
	}

	for _, gmp := range gomaxprocsLevels {
		withGOMAXPROCS(gmp, func() {
			snap, err := store.OpenSnapshot(image)
			if err != nil {
				t.Fatalf("GOMAXPROCS %d: open: %v", gmp, err)
			}
			rst, err := snap.State()
			if err != nil {
				t.Fatalf("GOMAXPROCS %d: decode: %v", gmp, err)
			}
			rec, err := core.RestoreAssessor(core.DefaultConfig(), rst)
			if err != nil {
				t.Fatalf("GOMAXPROCS %d: restore: %v", gmp, err)
			}
			if got := canonicalState(t, rec); !bytes.Equal(want, got) {
				t.Errorf("restore at GOMAXPROCS %d diverges from the exporting assessor", gmp)
			}
		})
	}
}

// TestApplyDeltaBatchMatchesSequential: committing a mutation sequence
// as one ApplyDeltaBatch (including a remove-then-re-add of the same
// path, the case MergeDeltas folds into remove-plus-fresh-add) must
// land on the same observable state as applying it delta by delta.
func TestApplyDeltaBatchMatchesSequential(t *testing.T) {
	for _, gmp := range gomaxprocsLevels {
		withGOMAXPROCS(gmp, func() {
			genA := corpusgen.New(parallelParams(), 99)
			genB := corpusgen.New(parallelParams(), 99)
			seq := core.NewAssessor(core.DefaultConfig())
			bat := core.NewAssessor(core.DefaultConfig())
			if err := seq.LoadFileSet(genA.FileSet()); err != nil {
				t.Fatal(err)
			}
			if err := bat.LoadFileSet(genB.FileSet()); err != nil {
				t.Fatal(err)
			}

			// A deterministic mutation burst, plus a remove-then-re-add
			// pair on a surviving path.
			var ds []core.Delta
			for i := 0; i < 6; i++ {
				mut := genA.Mutate()
				if mut.Kind == corpusgen.MutRemove {
					ds = append(ds, core.Delta{Removed: []string{mut.Path}})
				} else {
					ds = append(ds, core.Delta{Changed: []*srcfile.File{{Path: mut.Path, Src: mut.Src}}})
				}
			}
			p := genA.Paths()[0]
			src := genA.Source(p)
			ds = append(ds,
				core.Delta{Removed: []string{p}},
				core.Delta{Changed: []*srcfile.File{{Path: p, Src: src}}})

			for _, d := range ds {
				// Fresh File values per assessor: CommitDelta makes the
				// passed files corpus-resident.
				cp := core.Delta{Removed: d.Removed}
				for _, f := range d.Changed {
					cp.Changed = append(cp.Changed, &srcfile.File{Path: f.Path, Src: f.Src})
				}
				if _, err := seq.ApplyDelta(cp); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := bat.ApplyDeltaBatch(ds); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canonicalState(t, seq), canonicalState(t, bat)) {
				t.Errorf("GOMAXPROCS %d: batched commit diverges from sequential deltas", gmp)
			}
		})
	}
}

// TestSingleDeltaBatchIdentity: a one-delta batch is exactly ApplyDelta
// — same DeltaResult counts, same observable state.
func TestSingleDeltaBatchIdentity(t *testing.T) {
	genA := corpusgen.New(parallelParams(), 7)
	genB := corpusgen.New(parallelParams(), 7)
	one := core.NewAssessor(core.DefaultConfig())
	bat := core.NewAssessor(core.DefaultConfig())
	if err := one.LoadFileSet(genA.FileSet()); err != nil {
		t.Fatal(err)
	}
	if err := bat.LoadFileSet(genB.FileSet()); err != nil {
		t.Fatal(err)
	}
	mut := genA.Mutate()
	if mut.Kind == corpusgen.MutRemove {
		t.Fatalf("seed 7 first mutation is a remove; pick a seed whose first mutation carries content")
	}
	r1, err := one.ApplyDelta(core.Delta{Changed: []*srcfile.File{{Path: mut.Path, Src: mut.Src}}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := bat.ApplyDeltaBatch([]core.Delta{{Changed: []*srcfile.File{{Path: mut.Path, Src: mut.Src}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock observability fields (ParseNs, HookNs) legitimately
	// differ between two runs of the same work; the identity claim is
	// about the semantic fields.
	c1, c2 := *r1, *r2
	c1.ParseNs, c1.HookNs = 0, 0
	c2.ParseNs, c2.HookNs = 0, 0
	if c1 != c2 {
		t.Errorf("DeltaResult differs: ApplyDelta %+v, 1-batch %+v", *r1, *r2)
	}
	if !bytes.Equal(canonicalState(t, one), canonicalState(t, bat)) {
		t.Error("1-delta batch diverges from ApplyDelta")
	}
	if _, err := bat.ApplyDeltaBatch(nil); err == nil {
		t.Error("empty batch should be rejected")
	}
}
